package fabric

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/marginal"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/telemetry"
	"repro/internal/vector"
)

// Executor is the worker side of the fabric: it turns Tasks into Results
// against the process's own dataset store, reproducing exactly the bits
// the coordinator would have computed locally.
type Executor struct {
	// Store resolves measure tasks' datasets. Required for MeasureTask;
	// recover tasks carry their input inline.
	Store *store.Store
	// Cache optionally memoises rebuilt plans across tasks (shared with
	// the worker's own serving path, so a mixed worker warms one cache).
	Cache *engine.PlanCache
	// Workers bounds per-task internal parallelism (0 = all CPUs).
	Workers int
	// Log, when non-nil, receives one structured record per executed
	// task, carrying the frame's RequestID so worker logs correlate with
	// the coordinator's release.
	Log *slog.Logger
	// Metrics, when non-nil, records per-task duration histograms
	// (dpcubed_fabric_task_duration_seconds, labeled by kind).
	Metrics *telemetry.Registry
}

// Execute runs one task. Failures are reported inside the Result (Err,
// Stale) rather than as a Go error: every outcome travels the same frame
// path back to the coordinator.
func (e *Executor) Execute(ctx context.Context, t *Task) *Result {
	start := time.Now()
	res := &Result{Proto: ProtoVersion, ID: t.ID}
	cells, cellVar, err := e.execute(ctx, t, res)
	if err != nil {
		res.Err = err.Error()
	} else {
		res.Cells, res.CellVar = cells, cellVar
		res.Checksum = Checksum(cells, cellVar)
	}
	e.observe(ctx, t, res, time.Since(start))
	return res
}

func (e *Executor) observe(ctx context.Context, t *Task, res *Result, d time.Duration) {
	if e.Metrics != nil {
		e.Metrics.Histogram("dpcubed_fabric_task_duration_seconds",
			"Worker-side fabric task wall time, by task kind.",
			telemetry.LatencyBuckets(),
			telemetry.Label{Key: "kind", Value: string(t.Kind)},
		).Observe(d.Seconds())
	}
	if e.Log == nil {
		return
	}
	lvl := slog.LevelInfo
	if res.Err != "" {
		lvl = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("kind", string(t.Kind)),
		slog.String("request_id", t.RequestID),
		slog.String("dataset", t.Dataset),
		slog.Int("lo", t.Lo),
		slog.Int("hi", t.Hi),
		slog.Int("marginals", len(t.Marginals)),
		slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
	}
	if res.Err != "" {
		attrs = append(attrs, slog.String("error", res.Err), slog.Bool("stale", res.Stale))
	}
	e.Log.LogAttrs(ctx, lvl, "fabric task", attrs...)
}

func (e *Executor) execute(ctx context.Context, t *Task, res *Result) ([]float64, []float64, error) {
	if t.Proto != ProtoVersion {
		return nil, nil, fmt.Errorf("fabric: task protocol %d, worker speaks %d", t.Proto, ProtoVersion)
	}
	plan, w, err := e.plan(ctx, t.Plan)
	if err != nil {
		return nil, nil, err
	}
	switch t.Kind {
	case MeasureTask:
		cells, err := e.measure(ctx, t, plan, res)
		return cells, nil, err
	case RecoverTask:
		return e.recover(ctx, t, plan, w)
	default:
		return nil, nil, fmt.Errorf("fabric: unknown task kind %q", t.Kind)
	}
}

// plan rebuilds the coordinator's strategy plan from its pure description.
// Planning is deterministic — same workload, same strategy config, same
// plan bits — and the plan cache makes repeat tasks for one release (or
// many releases over one workload) hit memoised closures.
func (e *Executor) plan(ctx context.Context, sp PlanSpec) (*strategy.Plan, *marginal.Workload, error) {
	w, err := marginal.NewWorkload(sp.D, sp.Alphas)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: task workload: %w", err)
	}
	if sp.Record != nil {
		if e.Cache != nil {
			// Install keys the rebuilt plan exactly as the planner would,
			// so the Plan call below is a cache hit (and later tasks skip
			// the rebuild too).
			if _, err := e.Cache.Install([]*strategy.PlanRecord{sp.Record}); err != nil {
				return nil, nil, fmt.Errorf("fabric: installing plan record: %w", err)
			}
		} else {
			plan, _, err := strategy.RebuildPlan(sp.Record)
			if err != nil {
				return nil, nil, fmt.Errorf("fabric: rebuilding plan: %w", err)
			}
			return plan, w, nil
		}
	}
	impl, err := strategyFor(sp)
	if err != nil {
		return nil, nil, err
	}
	plan, err := engine.Planner{Cache: e.Cache}.Plan(ctx, w, engine.Config{
		Strategy:     impl,
		QueryWeights: sp.Weights,
	})
	if err != nil {
		return nil, nil, err
	}
	return plan, w, nil
}

// strategyFor maps a wire strategy kind to its implementation. Only the
// four paper strategies are distributable; the coordinator never ships
// anything else.
func strategyFor(sp PlanSpec) (strategy.Strategy, error) {
	switch sp.Kind {
	case "F":
		return strategy.Fourier{}, nil
	case "Q":
		return strategy.Workload{}, nil
	case "I":
		return strategy.Identity{}, nil
	case "C":
		return strategy.Cluster{MaxMerges: sp.MaxMerges}, nil
	default:
		return nil, fmt.Errorf("fabric: unsupported strategy kind %q", sp.Kind)
	}
}

// measure computes noisy strategy answers for rows [Lo, Hi): the exact
// answer slice (AnswerBlock tiling, or a TrueAnswers slice for global
// plans) plus the range's noise draws via engine.PerturbRangeContext.
func (e *Executor) measure(ctx context.Context, t *Task, plan *strategy.Plan, res *Result) ([]float64, error) {
	if e.Store == nil {
		return nil, fmt.Errorf("fabric: worker has no dataset store")
	}
	rows := plan.Rows()
	if t.Lo < 0 || t.Hi > rows || t.Lo > t.Hi {
		return nil, fmt.Errorf("fabric: row range [%d,%d) outside plan rows %d", t.Lo, t.Hi, rows)
	}
	if len(t.Eta) != len(plan.Specs) {
		return nil, fmt.Errorf("fabric: task has %d group budgets, plan has %d groups", len(t.Eta), len(plan.Specs))
	}
	h, err := e.Store.Get(t.Dataset)
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	defer h.Close()
	if h.Fingerprint() != t.Fingerprint {
		// The handshake: this worker's copy is not the coordinator's copy
		// (stale snapshot, divergent ingest, racing append). Answering
		// would merge bits from a different dataset into the release.
		res.Stale = true
		return nil, fmt.Errorf("fabric: dataset %q fingerprint %016x, task expects %016x",
			t.Dataset, h.Fingerprint(), t.Fingerprint)
	}
	x := h.Vector()
	out := make([]float64, t.Hi-t.Lo)
	if plan.AnswerBlock != nil {
		plan.AnswerBlock(x, t.Lo, t.Hi, out)
	} else {
		// Global plans (Fourier) cannot slice: compute everything, keep
		// the range. The coordinator ships such plans as one full-range
		// task, so nothing is wasted.
		copy(out, plan.TrueAnswers(x, e.Workers)[t.Lo:t.Hi])
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	offsets := plan.GroupOffsets()
	groups := make([]engine.NoiseGroup, len(plan.Specs))
	for g, spec := range plan.Specs {
		groups[g] = engine.NoiseGroup{Start: offsets[g], Count: spec.Count, Eta: t.Eta[g]}
	}
	if err := engine.PerturbRangeContext(ctx, out, t.Lo, groups, t.Privacy, t.Seed); err != nil {
		return nil, err
	}
	return out, nil
}

// recover recovers the listed workload marginals from the measured vector,
// concatenating cell blocks in listed order.
func (e *Executor) recover(ctx context.Context, t *Task, plan *strategy.Plan, w *marginal.Workload) ([]float64, []float64, error) {
	if plan.RecoverMarginal == nil {
		return nil, nil, fmt.Errorf("fabric: plan %s does not recover per marginal", plan.Strategy)
	}
	z := vector.FromDense(t.Z)
	var cells []float64
	cellVar := make([]float64, 0, len(t.Marginals))
	for _, i := range t.Marginals {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if i < 0 || i >= len(w.Marginals) {
			return nil, nil, fmt.Errorf("fabric: marginal index %d outside workload of %d", i, len(w.Marginals))
		}
		block, cv, err := plan.RecoverMarginal(i, z, t.GroupVar)
		if err != nil {
			return nil, nil, fmt.Errorf("fabric: recovering marginal %d: %w", i, err)
		}
		cells = append(cells, block...)
		cellVar = append(cellVar, cv)
	}
	return cells, cellVar, nil
}

// ServeHTTP is the worker's task endpoint: one Task frame in the request
// body, one Result frame in the response. Transport-level problems (bad
// frame, wrong method) use HTTP status codes; task-level failures ride
// inside a 200 Result so the coordinator sees one error channel.
func (e *Executor) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "fabric: POST only", http.StatusMethodNotAllowed)
		return
	}
	var t Task
	if err := ReadFrame(r.Body, &t); err != nil {
		//dpvet:ignore errsink -- transport-level frame errors precede any dataset or credential access (wire diagnostics only), and the sole client is the coordinator; task-level failures ride inside the Result frame per the one-error-channel contract
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	res := e.Execute(r.Context(), &t)
	rw.Header().Set("Content-Type", ContentType)
	if err := WriteFrame(rw, res); err != nil {
		// Too late for a status change; the coordinator's frame decode
		// will fail and the task will be retried or re-executed locally.
		return
	}
}
