package fabric

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/marginal"
	"repro/internal/noise"
	"repro/internal/store"
	"repro/internal/strategy"
)

const testHeader = `{"schema":[{"name":"color","cardinality":3},{"name":"size","cardinality":2},{"name":"grade","cardinality":4}]}`

// testBody builds a deterministic NDJSON stream over the 5-bit test schema.
func testBody(n, salt int) string {
	var b strings.Builder
	b.WriteString(testHeader)
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		j := i + salt
		b.WriteString("[")
		b.WriteString(itoa(j % 3))
		b.WriteString(",")
		b.WriteString(itoa((j / 3) % 2))
		b.WriteString(",")
		b.WriteString(itoa((j / 7) % 4))
		b.WriteString("]\n")
	}
	return b.String()
}

func itoa(v int) string { return string(rune('0' + v)) }

// newWorker spins up one fabric worker: its own store (ingesting body) and
// an HTTP server exposing /v1/healthz and /v1/fabric/task.
func newWorker(t *testing.T, body string) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestNDJSON(context.Background(), "d", strings.NewReader(body), store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	exec := &Executor{Store: st, Cache: engine.NewPlanCache(8)}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.Handle("/v1/fabric/task", exec)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, st
}

func coordStore(t *testing.T, body string) (*store.Store, *store.Handle) {
	t.Helper()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestNDJSON(context.Background(), "d", strings.NewReader(body), store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	h, err := st.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return st, h
}

func TestFrameRoundTrip(t *testing.T) {
	task := &Task{
		Proto: ProtoVersion, ID: 7, Kind: MeasureTask,
		Plan:    PlanSpec{Kind: "Q", D: 5, Alphas: marginal.AllKWay(5, 2).Masks()},
		Privacy: noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove},
		Seed:    42, Eta: []float64{0.1, 0.2},
		Dataset: "d", Fingerprint: 123, Lo: 3, Hi: 9,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, task); err != nil {
		t.Fatal(err)
	}
	var got Task
	if err := ReadFrame(bytes.NewReader(buf.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Kind != MeasureTask || got.Fingerprint != 123 || got.Hi != 9 ||
		len(got.Plan.Alphas) != len(task.Plan.Alphas) || got.Eta[1] != 0.2 {
		t.Fatalf("round-trip mangled the task: %+v", got)
	}
	// A truncated frame fails loudly, not with a partial decode.
	if err := ReadFrame(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), &got); err == nil {
		t.Fatal("truncated frame decoded")
	}
	// A hostile length prefix is rejected before allocation.
	bad := append([]byte{0xff, 0xff, 0xff, 0xff}, buf.Bytes()[4:]...)
	if err := ReadFrame(bytes.NewReader(bad), &got); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	cells := []float64{1.5, -2.25, 0}
	sum := Checksum(cells, nil)
	cells[1] = math.Nextafter(cells[1], 0)
	if Checksum(cells, nil) == sum {
		t.Fatal("one-ulp corruption not detected")
	}
	// Length shifts between the two slices must change the sum too.
	if Checksum([]float64{1, 2}, []float64{3}) == Checksum([]float64{1}, []float64{2, 3}) {
		t.Fatal("slice boundary invisible to checksum")
	}
}

func TestExecutorRefusals(t *testing.T) {
	body := testBody(200, 0)
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.IngestNDJSON(context.Background(), "d", strings.NewReader(body), store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	h, _ := st.Get("d")
	defer h.Close()
	exec := &Executor{Store: st}
	sp := PlanSpec{Kind: "Q", D: 5, Alphas: marginal.AllKWay(5, 1).Masks()}
	base := Task{
		Proto: ProtoVersion, ID: 1, Kind: MeasureTask, Plan: sp,
		Privacy: noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove},
		Seed:    1, Eta: []float64{0.2, 0.2, 0.2, 0.2, 0.2},
		Dataset: "d", Fingerprint: h.Fingerprint(), Lo: 0, Hi: 5,
	}

	wrongProto := base
	wrongProto.Proto = ProtoVersion + 1
	if res := exec.Execute(context.Background(), &wrongProto); res.Err == "" {
		t.Fatal("foreign protocol version accepted")
	}
	wrongKind := base
	wrongKind.Kind = "sort"
	if res := exec.Execute(context.Background(), &wrongKind); res.Err == "" {
		t.Fatal("unknown task kind accepted")
	}
	stale := base
	stale.Fingerprint = base.Fingerprint + 1
	res := exec.Execute(context.Background(), &stale)
	if res.Err == "" || !res.Stale {
		t.Fatalf("stale fingerprint not refused as stale: %+v", res)
	}
	missing := base
	missing.Dataset = "nope"
	if res := exec.Execute(context.Background(), &missing); res.Err == "" || res.Stale {
		t.Fatalf("missing dataset: want non-stale error, got %+v", res)
	}
	badStrategy := base
	badStrategy.Plan.Kind = "X"
	if res := exec.Execute(context.Background(), &badStrategy); res.Err == "" {
		t.Fatal("unknown strategy kind accepted")
	}
	if res := exec.Execute(context.Background(), &base); res.Err != "" {
		t.Fatalf("valid task failed: %s", res.Err)
	} else if res.Checksum != Checksum(res.Cells, res.CellVar) {
		t.Fatal("result checksum wrong")
	}
}

// release runs one full engine pipeline with the given stages.
func release(t *testing.T, st engine.Stages, w *marginal.Workload, h *store.Handle, cfg engine.Config) *engine.Release {
	t.Helper()
	rel, err := engine.NewWithStages(engine.Options{}, st).RunVector(context.Background(), w, h.Vector(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func sameRelease(t *testing.T, label string, got, want *engine.Release) {
	t.Helper()
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if math.Float64bits(got.Answers[i]) != math.Float64bits(want.Answers[i]) {
			t.Fatalf("%s: answer %d differs: %v vs %v", label, i, got.Answers[i], want.Answers[i])
		}
	}
	for i := range want.CellVariances {
		if math.Float64bits(got.CellVariances[i]) != math.Float64bits(want.CellVariances[i]) {
			t.Fatalf("%s: cell variance %d differs", label, i)
		}
	}
}

// TestFabricBitIdentity is the subsystem's acceptance matrix: for every
// strategy (F, Q, C, I) and fleet size {0, 1, 3}, the fabric release is
// bit-identical to the single-process release — including one fleet with a
// worker that fails every task (its ranges re-execute locally).
func TestFabricBitIdentity(t *testing.T) {
	body := testBody(300, 0)
	_, h := coordStore(t, body)
	w := marginal.AllKWay(5, 2)
	ref := DatasetRef{ID: "d", Fingerprint: h.Fingerprint()}

	// A worker that is healthy but fails every task with HTTP 500.
	failing := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			rw.WriteHeader(http.StatusOK)
			return
		}
		http.Error(rw, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()

	w1, _ := newWorker(t, body)
	w2, _ := newWorker(t, body)
	w3, _ := newWorker(t, body)

	fleets := map[string][]string{
		"fleet0":      {},
		"fleet1":      {w1.URL},
		"fleet3":      {w1.URL, w2.URL, w3.URL},
		"fleet3-fail": {w1.URL, failing.URL, w2.URL},
	}
	cfgs := map[string]engine.Config{
		"F": {Strategy: strategy.Fourier{}},
		"Q": {Strategy: strategy.Workload{}},
		"C": {Strategy: strategy.Cluster{}},
		"I": {Strategy: strategy.Identity{}},
	}
	for name, cfg := range cfgs {
		cfg.Privacy = noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove}
		cfg.Seed = 97
		cfg.Budgeting = engine.OptimalBudget
		cfg.Consistency = engine.WeightedL2Consistency
		want := release(t, engine.Stages{}, w, h, cfg)
		for fleetName, urls := range fleets {
			c := New(Config{Workers: urls, TaskTimeout: 10 * time.Second, HedgeAfter: -1})
			got := release(t, c.Stages(w, ref), w, h, cfg)
			sameRelease(t, name+"/"+fleetName, got, want)
			m := c.Metrics()
			if len(urls) == 0 && m.LocalFallbacks == 0 {
				t.Errorf("%s/%s: fleet 0 did not count local fallbacks", name, fleetName)
			}
			if fleetName == "fleet3-fail" && m.LocalRedos == 0 {
				t.Errorf("%s/%s: failing worker's ranges not re-executed locally", name, fleetName)
			}
		}
	}
	// ApproxDP (Gaussian draws) through one mixed fleet as well.
	cfg := engine.Config{
		Strategy: strategy.Workload{},
		Privacy:  noise.Params{Type: noise.ApproxDP, Epsilon: 1, Delta: 1e-6, Neighbor: noise.AddRemove},
		Seed:     5, Consistency: engine.L2Consistency,
	}
	want := release(t, engine.Stages{}, w, h, cfg)
	c := New(Config{Workers: []string{w1.URL, failing.URL, w3.URL}, TaskTimeout: 10 * time.Second, HedgeAfter: -1})
	sameRelease(t, "approx/fleet3-fail", release(t, c.Stages(w, ref), w, h, cfg), want)
}

// TestFabricHedgesStragglers: a worker that hangs past HedgeAfter gets its
// range re-executed locally and the release still matches bit for bit.
func TestFabricHedgesStragglers(t *testing.T) {
	body := testBody(250, 3)
	_, h := coordStore(t, body)
	w := marginal.AllKWay(5, 2)
	ref := DatasetRef{ID: "d", Fingerprint: h.Fingerprint()}

	release1 := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			rw.WriteHeader(http.StatusOK)
			return
		}
		<-release1 // hold every task until the test ends
	}))
	defer hung.Close()
	defer close(release1)

	cfg := engine.Config{
		Strategy: strategy.Cluster{},
		Privacy:  noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove},
		Seed:     11, Budgeting: engine.OptimalBudget,
	}
	want := release(t, engine.Stages{}, w, h, cfg)
	c := New(Config{
		Workers:     []string{hung.URL},
		TaskTimeout: 30 * time.Second, // far past the test: only the hedge can finish it
		HedgeAfter:  20 * time.Millisecond,
	})
	got := release(t, c.Stages(w, ref), w, h, cfg)
	sameRelease(t, "hedged", got, want)
	m := c.Metrics()
	var hedges int64
	for _, wm := range m.Workers {
		hedges += wm.Hedges
	}
	if hedges == 0 {
		t.Fatal("straggler did not trigger a hedge")
	}
}

// TestConfigDefaults pins the documented flag semantics: Retries 0 means
// the default single retry and negative disables; HedgeAfter 0 means half
// the task timeout and negative disables.
func TestConfigDefaults(t *testing.T) {
	if got := (Config{}).retries(); got != 1 {
		t.Errorf("Retries 0: %d retries, want the default 1", got)
	}
	if got := (Config{Retries: 3}).retries(); got != 3 {
		t.Errorf("Retries 3: %d retries", got)
	}
	if got := (Config{Retries: -1}).retries(); got != 0 {
		t.Errorf("Retries -1: %d retries, want 0 (disabled)", got)
	}
	if got := (Config{}).hedgeAfter(); got != 15*time.Second {
		t.Errorf("HedgeAfter 0: %v, want half the 30s default task timeout", got)
	}
	if got := (Config{HedgeAfter: -1}).hedgeAfter(); got != 0 {
		t.Errorf("HedgeAfter -1: %v, want 0 (disabled)", got)
	}
}

// TestProbeCancelledContextNotCached: a probe that fails only because the
// calling release's context was cancelled must not cache an unhealthy
// verdict — the worker is fine, and a poisoned cache would push every
// concurrent release onto the local path for a full ProbeTTL.
func TestProbeCancelledContextNotCached(t *testing.T) {
	w1, _ := newWorker(t, testBody(50, 0))
	c := New(Config{Workers: []string{w1.URL}})

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if got := c.healthy(cancelled); len(got) != 0 {
		t.Fatalf("cancelled ctx probed %d workers healthy", len(got))
	}
	// The failed probe stored nothing, so a live release probing within
	// what would have been the TTL sees the worker healthy.
	if got := c.healthy(context.Background()); len(got) != 1 {
		t.Fatal("cancelled-ctx probe poisoned the worker health cache")
	}
}

// TestFabricStaleWorker: a worker holding different data for the same id
// refuses the handshake; the coordinator re-executes locally and the
// release is still bit-identical (never silently merged stale bits).
func TestFabricStaleWorker(t *testing.T) {
	body := testBody(300, 0)
	_, h := coordStore(t, body)
	w := marginal.AllKWay(5, 2)
	ref := DatasetRef{ID: "d", Fingerprint: h.Fingerprint()}

	staleWorker, _ := newWorker(t, testBody(300, 9)) // same id, different rows

	cfg := engine.Config{
		Strategy: strategy.Workload{},
		Privacy:  noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove},
		Seed:     23,
	}
	want := release(t, engine.Stages{}, w, h, cfg)
	c := New(Config{Workers: []string{staleWorker.URL}, Retries: -1, TaskTimeout: 10 * time.Second, HedgeAfter: -1})
	got := release(t, c.Stages(w, ref), w, h, cfg)
	sameRelease(t, "stale-worker", got, want)
	m := c.Metrics()
	if m.Workers[0].StaleRefusals == 0 {
		t.Fatal("stale refusals not counted")
	}
	if m.LocalRedos == 0 {
		t.Fatal("stale ranges not re-executed locally")
	}
}
