// Package fabric is the distributed release fabric: a coordinator/worker
// subsystem that splits one release's Measure and Recover stages across
// processes, merging shard answers into a release that is bit-identical to
// the single-process path at any worker-fleet size — including fleet size
// zero, where every stage silently runs locally.
//
// # Why a remote shard can be bit-identical
//
// The engine's determinism contract makes the expensive stages
// embarrassingly distributable:
//
//   - strategy.Plan.AnswerBlock tiles [0, Rows()) bit-identically to
//     TrueAnswers, so any process holding the same contingency vector
//     computes the same answer slice for a row range.
//   - Noise is a pure function of (seed, group, row): each group's rows are
//     cut into fixed 4096-row noise blocks, and block b of group g draws
//     from the substream keyed (seed, g<<32|b). engine.PerturbRangeContext
//     replays exactly the draws of an arbitrary row range, reseeding at
//     each noise-block boundary and burning the leading rows' draws (the
//     per-row draw count is variable, so the stream cannot be jumped).
//   - strategy.Plan.RecoverMarginal(i) concatenated over i is bit-identical
//     to Recover, so marginals can be recovered anywhere and reassembled.
//
// What remains is making sure both sides hold the same bits: the dataset
// handshake. A Task names its dataset by id AND content fingerprint
// (store.Handle.Fingerprint — a hash of the schema and every count cell);
// a worker whose resident copy has a different fingerprint refuses the
// task rather than silently compute answers over stale data. Fingerprints,
// unlike store versions, are stable across processes and restarts.
//
// # Wire format
//
// One protocol version, ProtoVersion, carried in every frame and checked
// on both sides. Messages are gob-encoded and length-prefixed — a 4-byte
// big-endian payload length followed by the payload — carried in the body
// of POST /v1/fabric/task requests and responses (Content-Type
// application/x-dpcubed-fabric). Task ships the plan as a pure description
// (PlanSpec: strategy kind, workload masks, weights, and the cluster
// strategy's PlanRecord so workers skip the Θ(ℓ⁴) search); Result carries
// the partial answer cells plus an FNV-64a checksum over their bit
// patterns, verified before a shard answer is merged.
//
// Task requests authenticate with a fleet secret (Config.APIKey, sent as
// X-API-Key) that is distinct from any tenant API key: the task endpoint
// bypasses the worker's budget ledger — the coordinator charged the
// release at admission — so a tenant credential must never open it. A
// tenant who could post tasks would control Seed and Privacy directly and
// could average repeated measure answers to cancel the noise.
//
// # Coordinator behaviour
//
// The coordinator probes workers through GET /v1/healthz (cached for
// ProbeTTL), distributes measure block ranges and recover marginal sets
// via vector.Schedule (deterministic round-robin), enforces a per-task
// timeout with bounded retries and backoff, hedges stragglers by starting
// a local re-execution of the same range after HedgeAfter, and falls back
// to pure local execution when no worker is healthy. Because the local and
// remote computations are bit-identical, whichever side finishes first
// wins without affecting the release. Failures never fail the release —
// they only cost the latency of the local redo.
//
// Scheduling, fleet size, worker failures, hedging and retries are all
// invisible in the output: the released bytes depend only on (workload,
// dataset cells, release config), never on the topology that computed
// them. The server's release-result cache relies on exactly this — its
// keys include the dataset version but nothing about the fabric.
//
// # Observability
//
// Each Task frame carries the coordinator's request correlation ID
// (Task.RequestID, also sent as an X-Request-Id header on the task
// POST). It is purely observational — it never affects execution or the
// released bits, and gob tolerates its absence in either direction, so
// ProtoVersion is unchanged. Workers with an Executor.Log emit one
// structured "fabric task" record per task carrying that ID, which is
// what lets a release's logs be joined across the fleet; Executor.
// Metrics records per-kind task duration histograms
// (dpcubed_fabric_task_duration_seconds). Coordinator-side, each task
// opens a detail span under the release's measure/recover stage span
// recording worker, range, attempts, hedging and local-vs-remote
// outcome — visible via the release request's "debug_timing" flag.
package fabric
