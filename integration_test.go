package repro_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/accountant"
	"repro/internal/bits"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/marginal"
	"repro/internal/noise"
	"repro/internal/strategy"
	"repro/internal/synth"
)

// TestAllStrategiesConvergeToTruth: as ε → ∞ every strategy/budgeting
// combination converges to the exact workload answers — a cross-strategy
// integration invariant exercising the full plan/answer/recover pipeline.
func TestAllStrategiesConvergeToTruth(t *testing.T) {
	tab := dataset.SyntheticBinary(1, 8, 2000)
	x, err := tab.Vector()
	if err != nil {
		t.Fatal(err)
	}
	w := marginal.SchemaKWayStar(tab.Schema, 1)
	truth := w.Eval(x)
	for _, s := range []strategy.Strategy{
		strategy.Identity{}, strategy.Workload{}, strategy.Fourier{},
		strategy.Cluster{}, strategy.HierarchyMarginal{},
	} {
		for _, b := range []core.Budgeting{core.UniformBudget, core.OptimalBudget} {
			rel, err := core.Run(w, x, core.Config{
				Strategy: s, Budgeting: b,
				Consistency: core.WeightedL2Consistency,
				Privacy:     noise.Params{Type: noise.PureDP, Epsilon: 1e9, Neighbor: noise.AddRemove},
				Seed:        1,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name(), b, err)
			}
			for i := range truth {
				if math.Abs(rel.Answers[i]-truth[i]) > 1e-3 {
					t.Fatalf("%s/%v: answer %d = %v, truth %v", s.Name(), b, i, rel.Answers[i], truth[i])
				}
			}
		}
	}
}

// TestConsistencyIdempotent: projecting an already consistent release again
// must be a no-op (the projection is onto a linear subspace).
func TestConsistencyIdempotent(t *testing.T) {
	tab := dataset.SyntheticBinary(2, 7, 1500)
	x, err := tab.Vector()
	if err != nil {
		t.Fatal(err)
	}
	w := marginal.SchemaKWay(tab.Schema, 2)
	rel, err := core.Run(w, x, core.Config{
		Strategy: strategy.Workload{}, Budgeting: core.OptimalBudget,
		Consistency: core.L2Consistency,
		Privacy:     noise.Params{Type: noise.PureDP, Epsilon: 0.5, Neighbor: noise.AddRemove},
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	again, err := consistency.L2(w, rel.Answers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rel.Answers {
		if math.Abs(again.Answers[i]-rel.Answers[i]) > 1e-7 {
			t.Fatalf("consistency not idempotent at %d: %v vs %v", i, again.Answers[i], rel.Answers[i])
		}
	}
}

// TestFullPipelineWithAccountant: several releases over one dataset under a
// ledger, each strategy charged sequentially, overrun rejected.
func TestFullPipelineWithAccountant(t *testing.T) {
	tab := repro.SyntheticNLTCS(3, 4000)
	acct, err := accountant.New(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1 := repro.AllKWayMarginals(tab.Schema, 1)
	release := func(label string, eps float64) error {
		if err := acct.Charge(accountant.Charge{Label: label, Epsilon: eps}); err != nil {
			return err
		}
		_, err := repro.Release(tab, w1, repro.Options{Epsilon: eps, Seed: 9})
		return err
	}
	if err := release("q1-initial", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := release("q1-refresh", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := release("q1-overrun", 0.5); err == nil {
		t.Fatal("budget overrun was not rejected")
	}
	eps, _ := acct.Spent()
	if math.Abs(eps-0.8) > 1e-12 {
		t.Fatalf("ledger spent %v, want 0.8", eps)
	}
}

// TestCubeToSyntheticRoundTrip: release a cube, materialise synthetic data
// from its order-2 workload, and verify the synthetic cube's cuboids remain
// close to the released ones.
func TestCubeToSyntheticRoundTrip(t *testing.T) {
	s := repro.MustSchema([]repro.Attribute{
		{Name: "a", Cardinality: 3},
		{Name: "b", Cardinality: 2},
		{Name: "c", Cardinality: 3},
	})
	rows := make([][]int, 0, 1200)
	for i := 0; i < 1200; i++ {
		rows = append(rows, []int{i % 3, (i / 3) % 2, (i / 7) % 3})
	}
	tab := &repro.Table{Schema: s, Rows: rows}
	w := repro.AllKWayMarginals(s, 2)
	res, err := repro.Release(tab, w, repro.Options{Epsilon: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := repro.SyntheticData(s, w, res, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic table must reproduce the released 2-way tables within
	// clamping+rounding distance.
	exact, err := repro.Release(syn, w, repro.Options{Epsilon: 1e12, SkipConsistency: true, Strategy: repro.StrategyWorkload})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range res.Answers {
		if d := math.Abs(exact.Answers[i] - res.Answers[i]); d > worst {
			worst = d
		}
	}
	if worst > 25 {
		t.Fatalf("synthetic cuboids drifted by %v from the release", worst)
	}
}

// TestFailureInjection: malformed inputs fail loudly everywhere, never
// silently release garbage.
func TestFailureInjection(t *testing.T) {
	tab := dataset.SyntheticBinary(4, 6, 100)
	x, _ := tab.Vector()
	w := marginal.SchemaKWay(tab.Schema, 1)
	pure := noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove}

	cases := []struct {
		name string
		cfg  core.Config
		data []float64
	}{
		{"nil strategy", core.Config{Privacy: pure}, x},
		{"zero epsilon", core.Config{Strategy: strategy.Fourier{}, Privacy: noise.Params{}}, x},
		{"short data", core.Config{Strategy: strategy.Fourier{}, Privacy: pure}, x[:5]},
		{"bad delta", core.Config{Strategy: strategy.Fourier{}, Privacy: noise.Params{Type: noise.ApproxDP, Epsilon: 1, Delta: 2}}, x},
	}
	for _, c := range cases {
		if _, err := core.Run(w, c.data, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}

	// Synth layer rejects nonsense too.
	if _, err := synth.MaterializeVector(99, nil); err == nil {
		t.Error("bad dimension accepted by MaterializeVector")
	}
	if _, err := consistency.L2(w, make([]float64, 1)); err == nil {
		t.Error("short consistency input accepted")
	}
}

// TestSeedIsolation: two releases with different seeds share no noise, but
// the analytic variance accounting is identical.
func TestSeedIsolation(t *testing.T) {
	tab := dataset.SyntheticBinary(5, 8, 500)
	x, _ := tab.Vector()
	w := marginal.SchemaKWay(tab.Schema, 1)
	cfg := core.Config{
		Strategy: strategy.Fourier{}, Budgeting: core.OptimalBudget,
		Privacy: noise.Params{Type: noise.PureDP, Epsilon: 0.5, Neighbor: noise.AddRemove},
	}
	cfg.Seed = 1
	a, err := core.Run(w, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := core.Run(w, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalVariance != b.TotalVariance {
		t.Fatalf("analytic variance must not depend on the seed: %v vs %v", a.TotalVariance, b.TotalVariance)
	}
	same := 0
	for i := range a.Answers {
		if a.Answers[i] == b.Answers[i] {
			same++
		}
	}
	if same == len(a.Answers) {
		t.Fatal("different seeds produced identical noise")
	}
}

// TestWorkloadSubsetMonotonicity: adding marginals to the workload can only
// increase the total analytic variance at fixed ε (more queries, same
// budget) for the workload strategy.
func TestWorkloadSubsetMonotonicity(t *testing.T) {
	tab := dataset.SyntheticBinary(6, 8, 500)
	x, _ := tab.Vector()
	pure := noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove}
	small := marginal.MustWorkload(8, []bits.Mask{0b00000011, 0b00001100})
	big := marginal.MustWorkload(8, []bits.Mask{0b00000011, 0b00001100, 0b00110000, 0b11000000})
	run := func(w *marginal.Workload) float64 {
		rel, err := core.Run(w, x, core.Config{
			Strategy: strategy.Workload{}, Budgeting: core.OptimalBudget, Privacy: pure, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rel.TotalVariance
	}
	if run(big) <= run(small) {
		t.Fatal("larger workload must cost more variance at fixed ε")
	}
}
