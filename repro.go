package repro

import (
	"context"
	"fmt"

	"repro/internal/bits"
	"repro/internal/consistency"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/marginal"
	"repro/internal/noise"
	"repro/internal/strategy"
)

// PlanCache memoises Step-1 strategy plans across releases over the same
// schema and workload — the serving scenario, where repeated releases skip
// the (for some strategies very expensive) planning step entirely. A cache
// is safe for concurrent use and never changes released values.
type PlanCache = engine.PlanCache

// NewPlanCache returns a bounded LRU plan cache to share across releases.
func NewPlanCache() *PlanCache { return engine.NewPlanCache(0) }

// NewPlanCacheSize is NewPlanCache with an explicit entry bound
// (0 = default).
func NewPlanCacheSize(maxEntries int) *PlanCache { return engine.NewPlanCache(maxEntries) }

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
type CacheStats = engine.CacheStats

// Re-exported data-model types. The public API works in terms of schemas,
// tables and marginal workloads; the contingency-vector plumbing stays
// internal.
type (
	// Attribute is one categorical column of the input relation.
	Attribute = dataset.Attribute
	// Schema is an ordered attribute list with a fixed binary encoding.
	Schema = dataset.Schema
	// Table is a multiset of tuples under a schema.
	Table = dataset.Table
	// Workload is an ordered set of marginal queries.
	Workload = marginal.Workload
	// Mask identifies a marginal by its binary-attribute set.
	Mask = bits.Mask
)

// NewSchema validates attributes and computes the binary encoding.
func NewSchema(attrs []Attribute) (*Schema, error) { return dataset.NewSchema(attrs) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs []Attribute) *Schema { return dataset.MustSchema(attrs) }

// StrategyKind selects the Step-1 strategy matrix.
type StrategyKind int

// Available strategies, named as in the paper's experimental study.
const (
	// StrategyFourier answers the workload's Fourier coefficients
	// (Barak et al.); scalable and consistent, the recommended default.
	StrategyFourier StrategyKind = iota
	// StrategyWorkload perturbs each requested marginal directly (S = Q).
	StrategyWorkload
	// StrategyIdentity materialises noisy base counts (S = I).
	StrategyIdentity
	// StrategyCluster greedily clusters marginals (Ding et al.); most
	// accurate on low-order workloads, exponentially slower to plan.
	StrategyCluster
)

func (k StrategyKind) String() string {
	switch k {
	case StrategyWorkload:
		return "workload"
	case StrategyIdentity:
		return "identity"
	case StrategyCluster:
		return "cluster"
	default:
		return "fourier"
	}
}

func (k StrategyKind) impl() strategy.Strategy {
	switch k {
	case StrategyWorkload:
		return strategy.Workload{}
	case StrategyIdentity:
		return strategy.Identity{}
	case StrategyCluster:
		return strategy.Cluster{}
	default:
		return strategy.Fourier{}
	}
}

// Options configures a private release. The zero value releases with the
// Fourier strategy, optimal non-uniform budgets, weighted-L2 consistency and
// ε-DP; Epsilon must be set explicitly.
type Options struct {
	// Epsilon is the total privacy budget (required, > 0).
	Epsilon float64
	// Delta switches to (ε,δ)-DP with Gaussian noise when positive.
	Delta float64
	// Strategy selects the strategy matrix (default Fourier).
	Strategy StrategyKind
	// UniformBudget disables the paper's non-uniform budgeting and
	// reproduces the prior-work baseline.
	UniformBudget bool
	// SkipConsistency returns raw recovered answers without the
	// Fourier-consistency projection.
	SkipConsistency bool
	// ModifyNeighbors uses the "modify one tuple" neighbour model
	// (sensitivity doubled); default is add/remove-one-tuple.
	ModifyNeighbors bool
	// Seed makes the release reproducible; 0 is a valid fixed seed.
	Seed int64
	// QueryWeights optionally weights each marginal's importance in the
	// noise budgeting (the paper's aᵀ·Var(y) objective); QueryWeights[i]
	// applies to workload marginal i. nil means equal importance.
	QueryWeights []float64
	// Workers bounds the release engine's worker pool for noisy measurement
	// and per-marginal recovery. 0 uses all available CPUs; 1 forces serial
	// execution. The released values are bit-identical at every setting.
	Workers int
	// Shards bounds how many blocks the measure stage partitions the
	// strategy-answer vector into (0 auto-shards above the engine's row
	// threshold; 1 forces the monolithic path). Bit-identical at every
	// setting, like Workers.
	Shards int
	// Cache optionally reuses Step-1 plans across releases (see PlanCache).
	Cache *PlanCache
}

func (o Options) params() noise.Params {
	p := noise.Params{Type: noise.PureDP, Epsilon: o.Epsilon, Neighbor: noise.AddRemove}
	if o.Delta > 0 {
		p.Type = noise.ApproxDP
		p.Delta = o.Delta
	}
	if o.ModifyNeighbors {
		p.Neighbor = noise.Modify
	}
	return p
}

// MarginalTable is one released marginal.
type MarginalTable struct {
	// Attrs are the original schema attribute indices the marginal is over.
	Attrs []int
	// Mask is the marginal's binary-attribute mask.
	Mask Mask
	// Cells are the noisy counts; Cells[i] corresponds to the attribute
	// values dataset.Schema.Decode would produce for the cell's bit pattern.
	Cells []float64
	// Variance is the per-cell noise variance before consistency.
	Variance float64
}

// Result is a complete private release.
type Result struct {
	// Tables holds one noisy marginal per workload entry, in order.
	Tables []MarginalTable
	// Answers is the concatenated raw answer vector (workload order).
	Answers []float64
	// TotalVariance is the analytic total output variance of the mechanism.
	TotalVariance float64
	// Strategy and budgeting descriptors for reporting.
	Strategy string
}

// AllKWayMarginals builds the workload Q_k over the schema's original
// attributes.
func AllKWayMarginals(s *Schema, k int) *Workload { return marginal.SchemaKWay(s, k) }

// KWayPlusHalf builds Q*_k: all k-way marginals plus the (deterministic)
// first half of the (k+1)-way marginals.
func KWayPlusHalf(s *Schema, k int) *Workload { return marginal.SchemaKWayStar(s, k) }

// KWayAnchored builds Q^a_k: all k-way marginals plus every (k+1)-way
// marginal containing the anchor attribute.
func KWayAnchored(s *Schema, k, anchor int) *Workload {
	return marginal.SchemaKWayAnchored(s, k, anchor)
}

// MarginalsOver builds a workload of explicit attribute-index sets, e.g.
// MarginalsOver(s, [][]int{{0}, {0, 2}}).
func MarginalsOver(s *Schema, attrSets [][]int) (*Workload, error) {
	alphas := make([]Mask, len(attrSets))
	for i, set := range attrSets {
		for _, a := range set {
			if a < 0 || a >= len(s.Attrs) {
				return nil, fmt.Errorf("repro: attribute index %d out of range", a)
			}
		}
		alphas[i] = s.MaskOf(set...)
	}
	return marginal.NewWorkload(s.Dim(), alphas)
}

// releaserOptions maps the flat one-shot Options onto Releaser construction
// options, keeping the legacy entry points thin wrappers over the service
// API.
func (o Options) releaserOptions() []ReleaserOption {
	opts := []ReleaserOption{WithStrategy(o.Strategy)}
	if o.UniformBudget {
		opts = append(opts, WithUniformBudget())
	}
	if o.SkipConsistency {
		opts = append(opts, WithoutConsistency())
	}
	if o.ModifyNeighbors {
		opts = append(opts, WithModifyNeighbors())
	}
	if o.QueryWeights != nil {
		opts = append(opts, WithQueryWeights(o.QueryWeights))
	}
	if o.Workers > 0 {
		opts = append(opts, WithWorkers(o.Workers))
	}
	if o.Shards > 0 {
		opts = append(opts, WithShards(o.Shards))
	}
	if o.Cache != nil {
		opts = append(opts, WithCache(o.Cache))
	}
	// One-shot callers gain nothing from the construction-time planning
	// pass (the run plans — and caches — anyway), so skip it.
	opts = append(opts, WithoutPreplan())
	return opts
}

// spec extracts the per-release parameters from the flat Options.
func (o Options) spec() ReleaseSpec {
	return ReleaseSpec{Epsilon: o.Epsilon, Delta: o.Delta, Seed: o.Seed}
}

// Release privately answers the workload over the table — a thin wrapper
// over a throwaway Releaser. Long-lived callers (many releases over one
// schema and workload) should construct a Releaser once instead: it
// pre-plans, caches, accepts a context and can enforce a cumulative budget
// cap.
func Release(t *Table, w *Workload, o Options) (*Result, error) {
	if t == nil || t.Schema == nil {
		return nil, fmt.Errorf("%w: nil table or schema", ErrInvalidOption)
	}
	r, err := NewReleaser(t.Schema, w, o.releaserOptions()...)
	if err != nil {
		return nil, err
	}
	return r.Release(context.Background(), t, o.spec())
}

// ReleaseVector is Release for callers who already hold the contingency
// vector; schema may be nil (attribute indices in the result are then
// omitted).
func ReleaseVector(x []float64, w *Workload, o Options, schema *Schema) (*Result, error) {
	r, err := NewReleaser(schema, w, o.releaserOptions()...)
	if err != nil {
		return nil, err
	}
	return r.ReleaseVector(context.Background(), x, o.spec())
}

// consistencyOf recovers the Fourier coefficients of a release by running
// the deterministic L2 consistency projection over its answers.
func consistencyOf(w *Workload, res *Result) (map[bits.Mask]float64, error) {
	cres, err := consistency.L2(w, res.Answers)
	if err != nil {
		return nil, err
	}
	return cres.Coefficients, nil
}

// Synthetic data generators re-exported for examples and experiments.
var (
	// SyntheticAdult generates a census-like table (see DESIGN.md,
	// Substitutions).
	SyntheticAdult = dataset.SyntheticAdult
	// SyntheticNLTCS generates a disability-survey-like binary table.
	SyntheticNLTCS = dataset.SyntheticNLTCS
)

// AdultSchema and NLTCSSchema mirror the paper's datasets.
func AdultSchema() *Schema { return dataset.AdultSchema() }

// NLTCSSchema returns the 16-binary-attribute NLTCS schema.
func NLTCSSchema() *Schema { return dataset.NLTCSSchema() }
