package repro

import (
	"math"
	"testing"

	"repro/internal/consistency"
)

func smallTable() *Table {
	s := MustSchema([]Attribute{
		{Name: "color", Cardinality: 3},
		{Name: "size", Cardinality: 2},
		{Name: "grade", Cardinality: 4},
	})
	rows := [][]int{}
	for i := 0; i < 300; i++ {
		rows = append(rows, []int{i % 3, (i / 3) % 2, (i / 7) % 4})
	}
	return &Table{Schema: s, Rows: rows}
}

func TestReleaseEndToEnd(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	res, err := Release(tab, w, Options{Epsilon: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("%d tables, want 3", len(res.Tables))
	}
	// Attribute indices recorded.
	if len(res.Tables[0].Attrs) != 1 || res.Tables[0].Attrs[0] != 0 {
		t.Fatalf("table 0 attrs = %v", res.Tables[0].Attrs)
	}
	// Cell counts should roughly match the uniform-ish generator (100 per
	// color) at ε=2.
	for c := 0; c < 3; c++ {
		if math.Abs(res.Tables[0].Cells[c]-100) > 50 {
			t.Fatalf("color %d count %v far from 100", c, res.Tables[0].Cells[c])
		}
	}
}

func TestReleaseAllStrategies(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	for _, k := range []StrategyKind{StrategyFourier, StrategyWorkload, StrategyIdentity, StrategyCluster} {
		res, err := Release(tab, w, Options{Epsilon: 1, Strategy: k, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(res.Answers) != w.TotalCells() {
			t.Fatalf("%v: wrong answer count", k)
		}
	}
}

func TestReleaseConsistentByDefault(t *testing.T) {
	tab := smallTable()
	w := KWayPlusHalf(tab.Schema, 1)
	res, err := Release(tab, w, Options{Epsilon: 0.5, Strategy: StrategyWorkload, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !consistency.IsConsistent(w, res.Answers, 1e-6) {
		t.Fatal("default release must be consistent")
	}
	raw, err := Release(tab, w, Options{Epsilon: 0.5, Strategy: StrategyWorkload, Seed: 3, SkipConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	if consistency.IsConsistent(w, raw.Answers, 1e-6) {
		t.Fatal("raw workload-strategy release should generally be inconsistent")
	}
}

func TestOptionsValidation(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	if _, err := Release(tab, w, Options{}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := Release(nil, w, Options{Epsilon: 1}); err == nil {
		t.Error("nil table accepted")
	}
	other := MustSchema([]Attribute{{Name: "x", Cardinality: 2}})
	if _, err := Release(tab, AllKWayMarginals(other, 1), Options{Epsilon: 1}); err == nil {
		t.Error("schema/workload mismatch accepted")
	}
}

func TestUniformVsOptimalTotalVariance(t *testing.T) {
	tab := smallTable()
	w := KWayPlusHalf(tab.Schema, 1)
	uni, err := Release(tab, w, Options{Epsilon: 1, Strategy: StrategyWorkload, UniformBudget: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Release(tab, w, Options{Epsilon: 1, Strategy: StrategyWorkload, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalVariance > uni.TotalVariance*(1+1e-9) {
		t.Fatalf("optimal %v worse than uniform %v", opt.TotalVariance, uni.TotalVariance)
	}
}

func TestApproxDPOption(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	if _, err := Release(tab, w, Options{Epsilon: 1, Delta: 1e-6, Seed: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalsOver(t *testing.T) {
	tab := smallTable()
	w, err := MarginalsOver(tab.Schema, [][]int{{0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Marginals) != 2 {
		t.Fatalf("%d marginals, want 2", len(w.Marginals))
	}
	if _, err := MarginalsOver(tab.Schema, [][]int{{9}}); err == nil {
		t.Error("bad attribute index accepted")
	}
}

func TestSyntheticReexports(t *testing.T) {
	if AdultSchema().Dim() != 23 || NLTCSSchema().Dim() != 16 {
		t.Fatal("schema re-exports broken")
	}
	if SyntheticAdult(1, 10).Count() != 10 || SyntheticNLTCS(1, 10).Count() != 10 {
		t.Fatal("generator re-exports broken")
	}
}

func TestModifyNeighborsDoublesNoise(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	std, err := Release(tab, w, Options{Epsilon: 1, Strategy: StrategyWorkload, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Release(tab, w, Options{Epsilon: 1, Strategy: StrategyWorkload, Seed: 6, ModifyNeighbors: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mod.TotalVariance/std.TotalVariance-4) > 1e-6 {
		t.Fatalf("modify-neighbour variance ratio %v, want 4", mod.TotalVariance/std.TotalVariance)
	}
}

// TestReleaseWorkersAndCacheBitIdentical: the public Options.Workers and
// Options.Cache knobs are pure performance tuning — the release is
// bit-identical at every worker count, with or without a shared plan cache.
func TestReleaseWorkersAndCacheBitIdentical(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	ref, err := Release(tab, w, Options{Epsilon: 1, Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache()
	for _, workers := range []int{0, 2, 4} {
		got, err := Release(tab, w, Options{Epsilon: 1, Seed: 21, Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Answers {
			if math.Float64bits(ref.Answers[i]) != math.Float64bits(got.Answers[i]) {
				t.Fatalf("answer %d differs at workers=%d: %v vs %v",
					i, workers, ref.Answers[i], got.Answers[i])
			}
		}
	}
}
