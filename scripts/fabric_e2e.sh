#!/usr/bin/env bash
# Multi-process fabric e2e smoke: 1 coordinator + 2 shard workers + 1
# local-only reference daemon, all real dpcubed processes over loopback
# HTTP. Asserts the coordinator's distributed releases are bit-identical
# to the reference's single-process releases — including after one worker
# is killed mid-fleet — and that the coordinator's /v1/metrics reports
# fabric task activity. The coordinator ingests its copy gzip-compressed,
# so a passing run also proves gzip ingestion reproduces the exact bits
# the workers' plain copies hold (the fingerprint handshake would refuse
# every task otherwise).
#
# Also exercises the telemetry surfaces: a release with an explicit
# X-Request-Id must echo the ID and surface it in the coordinator's AND a
# worker's structured logs (cross-process correlation over the fabric
# frames), and the Prometheus scrapes on the coordinator and a worker
# must carry request/stage/fabric-task histograms (saved as
# coord-metrics.prom / worker-metrics.prom for CI artifacts).
#
# Usage: scripts/fabric_e2e.sh [output-metrics-file]
set -euo pipefail

OUT=${1:-fabric-metrics.json}
PORT_W1=18181 PORT_W2=18182 PORT_COORD=18183 PORT_REF=18184
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o dpcubed ./cmd/dpcubed

start() { # start <name> <args...>
  local name=$1; shift
  ./dpcubed "$@" 2>"log-$name.txt" &
  PIDS+=($!)
}

wait_ready() { # wait_ready <port>
  for _ in $(seq 1 60); do
    curl -sf "http://localhost:$1/v1/readyz" >/dev/null && return 0
    sleep 0.25
  done
  echo "FAIL: server on port $1 never became ready" >&2
  return 1
}

# The fleet secret authenticates every coordinator→worker task; tenant
# keys never open the task endpoint.
FLEET_KEY=e2e-fleet-secret
start w1 -addr "localhost:$PORT_W1" -epsilon-cap 1e9 -delta-cap 0.5 -worker -fabric-api-key "$FLEET_KEY"
start w2 -addr "localhost:$PORT_W2" -epsilon-cap 1e9 -delta-cap 0.5 -worker -fabric-api-key "$FLEET_KEY"
start coord -addr "localhost:$PORT_COORD" -epsilon-cap 1e9 -delta-cap 0.5 \
  -fabric-workers "http://localhost:$PORT_W1,http://localhost:$PORT_W2" \
  -fabric-api-key "$FLEET_KEY" \
  -fabric-hedge 10s
start ref -addr "localhost:$PORT_REF" -epsilon-cap 1e9 -delta-cap 0.5
for p in $PORT_W1 $PORT_W2 $PORT_COORD $PORT_REF; do wait_ready "$p"; done

# The task endpoint must refuse a post without the fleet secret.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary x \
  "http://localhost:$PORT_W1/v1/fabric/task")
if [ "$CODE" != 401 ]; then
  echo "FAIL: unauthenticated fabric task got HTTP $CODE, want 401" >&2
  exit 1
fi

# The same dataset everywhere: the fabric handshake requires every
# process's copy to hold the coordinator's exact bits.
DATA=fabric-e2e.ndjson
{
  echo '{"schema":[{"name":"color","cardinality":3},{"name":"size","cardinality":2},{"name":"grade","cardinality":4}]}'
  for i in $(seq 0 299); do
    echo "[$((i % 3)),$(((i / 3) % 2)),$(((i / 7) % 4))]"
  done
} >"$DATA"
gzip -k -f "$DATA"

for p in $PORT_W1 $PORT_W2 $PORT_REF; do
  curl -sf -X PUT --data-binary "@$DATA" "http://localhost:$p/v1/datasets/people" >/dev/null
done
curl -sf -X PUT -H 'Content-Encoding: gzip' --data-binary "@$DATA.gz" \
  "http://localhost:$PORT_COORD/v1/datasets/people" >/dev/null

release() { # release <port> <seed> <out-file>
  curl -sf -X POST "http://localhost:$1/v1/release" \
    -d "{\"dataset_id\":\"people\",\"workload\":{\"k\":2},\"epsilon\":0.5,\"seed\":$2,\"strategy\":\"cluster\"}" \
    | jq -S 'del(.budget)' >"$3"
}

check_identical() { # check_identical <seed> <label>
  release "$PORT_COORD" "$1" fabric-rel.json
  release "$PORT_REF" "$1" ref-rel.json
  if ! diff -q fabric-rel.json ref-rel.json >/dev/null; then
    echo "FAIL: $2: fabric release differs from local-only at seed $1" >&2
    diff fabric-rel.json ref-rel.json | head -20 >&2
    exit 1
  fi
  echo "OK: $2: bit-identical at seed $1"
}

check_identical 7 "full fleet"

# Request-ID correlation across the fleet: a release tagged with an
# explicit X-Request-Id must echo it, and the same ID must appear in the
# coordinator's request log and in at least one worker's task log (it
# rides the fabric frames).
RID="corr-e2e-$$"
HDRS=$(curl -sf -D - -o /dev/null -X POST "http://localhost:$PORT_COORD/v1/release" \
  -H "X-Request-Id: $RID" \
  -d '{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":99,"strategy":"cluster","debug_timing":true}')
if ! grep -qi "x-request-id: $RID" <<<"$HDRS"; then
  echo "FAIL: response did not echo X-Request-Id $RID" >&2
  echo "$HDRS" >&2
  exit 1
fi
if ! grep -q "$RID" log-coord.txt; then
  echo "FAIL: coordinator log has no record for request $RID" >&2
  tail -5 log-coord.txt >&2
  exit 1
fi
if ! grep -hq "$RID" log-w1.txt log-w2.txt; then
  echo "FAIL: no worker task log carries request $RID — fabric correlation broken" >&2
  tail -5 log-w1.txt log-w2.txt >&2
  exit 1
fi
echo "OK: request $RID correlated across coordinator and worker logs"

# The debug_timing span tree must account for the release's stages.
TIMING=$(curl -sf -X POST "http://localhost:$PORT_COORD/v1/release" \
  -d '{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":100,"strategy":"cluster","debug_timing":true}' \
  | jq '.timing')
for stage in plan allocate measure recover consist; do
  if [ "$(jq --arg s "$stage" '[.spans[] | select(.name == $s)] | length' <<<"$TIMING")" -eq 0 ]; then
    echo "FAIL: debug_timing tree missing stage $stage" >&2
    echo "$TIMING" >&2
    exit 1
  fi
done
echo "OK: debug_timing span tree carries all five stages"

# Prometheus scrapes: the coordinator's request/stage histograms and a
# worker's fabric task histogram. Saved for CI artifact upload.
curl -sf "http://localhost:$PORT_COORD/v1/metrics?format=prometheus" >coord-metrics.prom
for metric in \
  'dpcubed_requests_total{endpoint="POST /v1/release"}' \
  dpcubed_request_duration_seconds_bucket \
  'dpcubed_stage_duration_seconds_bucket{stage="measure"' \
  go_goroutines; do
  if ! grep -qF "$metric" coord-metrics.prom; then
    echo "FAIL: coordinator Prometheus scrape missing $metric" >&2
    exit 1
  fi
done
curl -sf "http://localhost:$PORT_W1/v1/metrics?format=prometheus" >worker-metrics.prom
if ! grep -qF 'dpcubed_fabric_task_duration_seconds_bucket{kind="measure"' worker-metrics.prom; then
  echo "FAIL: worker Prometheus scrape missing fabric task histogram" >&2
  grep dpcubed_fabric worker-metrics.prom >&2 || true
  exit 1
fi
echo "OK: Prometheus scrapes carry request, stage and fabric-task histograms"

# Kill one worker and release again: the fleet degrades, the bits do not.
kill "${PIDS[1]}"
check_identical 23 "one worker down"

curl -sf "http://localhost:$PORT_COORD/v1/metrics" | jq '.fabric' >"$OUT"
TASKS=$(jq '[.workers[].tasks] | add' "$OUT")
if [ "$TASKS" -eq 0 ]; then
  echo "FAIL: fleet completed zero fabric tasks — releases never distributed" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "OK: fleet completed $TASKS fabric task(s)"
cat "$OUT"
