#!/usr/bin/env bash
# lint.sh — the repository's static-analysis gate, runnable locally and in
# CI: one consolidated `go vet` over the whole module, then dpvet (the
# domain analyzers in internal/analysis), then govulncheck when the tool
# is installed. The dpvet JSON report (findings AND suppressions, even
# when empty) lands at ${DPVET_REPORT:-dpvet-report.json} so CI can upload
# it unconditionally as the audit artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

report="${DPVET_REPORT:-dpvet-report.json}"

echo "==> go vet ./..."
go vet ./...

echo "==> dpvet ./...  (report: ${report})"
go run ./cmd/dpvet -json "${report}" ./...

if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck ./..."
  govulncheck ./...
else
  echo "==> govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "lint: clean"
