package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// smallNDJSON renders smallTable in the dataset-store wire format.
func smallNDJSON() string {
	tab := smallTable()
	var b strings.Builder
	b.WriteString(`{"schema":[`)
	for i, a := range tab.Schema.Attrs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":%q,"cardinality":%d}`, a.Name, a.Cardinality)
	}
	b.WriteString("]}\n")
	for _, row := range tab.Rows {
		fmt.Fprintf(&b, "[%d,%d,%d]\n", row[0], row[1], row[2])
	}
	return b.String()
}

// TestReleaseDatasetBitIdentical: the upload-once path and the rows path
// are the same mechanism — bit-identical answers for the same seed.
func TestReleaseDatasetBitIdentical(t *testing.T) {
	ctx := context.Background()
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	r, err := NewReleaser(tab.Schema, w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}

	s, err := OpenDatasetStore("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IngestDataset(ctx, s, "small", strings.NewReader(smallNDJSON())); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("small")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got, err := r.ReleaseDataset(ctx, h, ReleaseSpec{Epsilon: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("answer lengths differ: %d vs %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if math.Float64bits(want.Answers[i]) != math.Float64bits(got.Answers[i]) {
			t.Fatalf("answer %d differs: %v vs %v", i, want.Answers[i], got.Answers[i])
		}
	}
}

// TestReleaseDatasetValidation: nil handles and dimension mismatches carry
// the package's typed errors.
func TestReleaseDatasetValidation(t *testing.T) {
	ctx := context.Background()
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	r, err := NewReleaser(tab.Schema, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReleaseDataset(ctx, nil, ReleaseSpec{Epsilon: 1}); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("nil handle: %v", err)
	}

	other := MustSchema([]Attribute{{Name: "only", Cardinality: 2}})
	s, err := OpenDatasetStore("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutCounts("tiny", other, []float64{1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	h, err := s.Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := r.ReleaseDataset(ctx, h, ReleaseSpec{Epsilon: 1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dimension mismatch: %v", err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("missing dataset: %v", err)
	}

	// Same bit-width, different attribute layout: one 16-ary column and two
	// 4-ary columns both occupy 4 bits, but releasing across that boundary
	// would mislabel every marginal — must be refused.
	wide := MustSchema([]Attribute{{Name: "w", Cardinality: 16}})
	split := MustSchema([]Attribute{{Name: "a", Cardinality: 4}, {Name: "b", Cardinality: 4}})
	rw, err := NewReleaser(wide, AllKWayMarginals(wide, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutCounts("split", split, make([]float64, split.DomainSize()), 0); err != nil {
		t.Fatal(err)
	}
	hs, err := s.Get("split")
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	if _, err := rw.ReleaseDataset(ctx, hs, ReleaseSpec{Epsilon: 1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("same-width different-layout schema accepted: %v", err)
	}
}
