package repro

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestReleaserPerKeyBudgets: WithBudgetCaps gives each key its own ledger
// under a still-binding global cap, and ReleaseSpec.Key routes the charge.
func TestReleaserPerKeyBudgets(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	r, err := NewReleaser(tab.Schema, w, WithBudgetCaps(1.0, 0, map[string]BudgetKeyCaps{
		"alice": {Epsilon: 0.5},
		"bob":   {},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.Ledger() != nil || r.Registry() == nil {
		t.Fatal("WithBudgetCaps must attach a registry, not a plain ledger")
	}
	ctx := context.Background()
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.4, Seed: 1, Key: "alice"}); err != nil {
		t.Fatal(err)
	}
	// Alice's own cap refuses her next release...
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.4, Seed: 2, Key: "alice"}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("alice past her cap: %v", err)
	}
	// ...while bob still releases within the global remainder.
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.5, Seed: 3, Key: "bob"}); err != nil {
		t.Fatal(err)
	}
	// The global cap binds across keys: bob has per-key room (inherited
	// cap 1.0) but the deployment has only 0.1 left.
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.3, Seed: 4, Key: "bob"}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("global cap must bind: %v", err)
	}
	// An unknown key is an error, not a silent global charge.
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.05, Seed: 5, Key: "mallory"}); err == nil {
		t.Fatal("unknown key released")
	}
	ge, _ := r.Registry().Global().Spent()
	if math.Abs(ge-0.9) > 1e-12 {
		t.Fatalf("global spend %v, want 0.9", ge)
	}
}

// TestReleaserKeyWithoutRegistry: a spec Key without WithBudgetCaps is a
// typed error (never a silent charge to the wrong ledger).
func TestReleaserKeyWithoutRegistry(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	for _, opts := range [][]ReleaserOption{
		nil,
		{WithBudgetCap(10, 0)},
	} {
		r, err := NewReleaser(tab.Schema, w, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Release(context.Background(), tab, ReleaseSpec{Epsilon: 0.1, Key: "k"}); !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("opts %d: Key without a registry returned %v", len(opts), err)
		}
	}
}

// TestReleaserZCDPComposition: with zCDP accounting a long sequence of
// small Gaussian releases fits under a cap that basic summation refuses —
// threaded end-to-end through WithComposition in either option order.
func TestReleaserZCDPComposition(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	comp, err := ZCDPComposition(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	zc, err := NewReleaser(tab.Schema, w,
		WithComposition(comp), WithBudgetCap(1.0, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	basic, err := NewReleaser(tab.Schema, w, WithBudgetCap(1.0, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := ReleaseSpec{Epsilon: 0.05, Delta: 1e-9}
	basicRefused := false
	for i := 0; i < 50; i++ {
		spec.Seed = int64(i)
		if _, err := zc.Release(ctx, tab, spec); err != nil {
			t.Fatalf("zCDP release %d refused: %v", i, err)
		}
		if !basicRefused {
			if _, err := basic.Release(ctx, tab, spec); errors.Is(err, ErrBudgetExhausted) {
				basicRefused = true
			}
		}
	}
	if !basicRefused {
		t.Fatal("basic summation admitted all 50 releases; sequence does not discriminate")
	}
	eps, del := zc.Ledger().Spent()
	if eps >= 1.0 || del != 1e-6 {
		t.Fatalf("zCDP spent (%v, %v), want ε under 1.0 at δ=1e-6", eps, del)
	}
}

// TestWithCompositionValidation: the option needs a cap to apply to, and a
// zCDP target above the δ cap is refused at construction.
func TestWithCompositionValidation(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	if _, err := NewReleaser(tab.Schema, w, WithComposition(BasicComposition())); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("WithComposition without caps: %v", err)
	}
	if _, err := NewReleaser(tab.Schema, w, WithComposition(nil)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("nil composition: %v", err)
	}
	comp, err := ZCDPComposition(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReleaser(tab.Schema, w, WithComposition(comp), WithBudgetCap(1, 1e-6)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("zCDP target above delta cap: %v", err)
	}
	if _, err := ZCDPComposition(0); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("zero target delta accepted")
	}
}
