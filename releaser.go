package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/accountant"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/noise"
	"repro/internal/vector"
)

// Fabric is the distributed release fabric's coordinator (see
// internal/fabric): attach one to a Releaser with WithFabric and
// dataset-backed releases fan their Measure and Recover stages out over a
// worker fleet — bit-identical to the local path at any fleet size.
type Fabric = fabric.Coordinator

// FabricConfig wires a Fabric to its worker fleet.
type FabricConfig = fabric.Config

// NewFabric builds a release-fabric coordinator. An empty worker list is
// valid (every stage runs locally); one Fabric is typically shared by all
// Releasers of a serving process so worker health and task metrics
// aggregate in one place.
func NewFabric(cfg FabricConfig) *Fabric { return fabric.New(cfg) }

// BlockedVector is a contingency vector stored as contiguous cell-range
// shards (see internal/vector): the form dataset aggregates take, and the
// form ReleaseBlocked consumes without ever gathering one dense 2^d slice.
type BlockedVector = vector.Blocked

// NewBlockedVector copies a dense contingency vector into the sharded form.
func NewBlockedVector(x []float64) *BlockedVector {
	b := vector.NewBlockLen(len(x), vector.DefaultBlockLen)
	b.Scatter(x)
	return b
}

// Releaser is the long-lived service object of the package: constructed
// once per (schema, workload) pair, it pre-plans the Step-1 strategy
// (warming its PlanCache, which for the cluster strategy is orders of
// magnitude more expensive than any single release), then answers any
// number of Release calls — each an independent differentially private
// mechanism run with its own (ε, δ, seed). Planning is privacy-independent,
// so one Releaser serves a whole ε sweep or a stream of per-request
// budgets without replanning.
//
// A Releaser is safe for concurrent use: the plan cache and budget ledger
// are concurrency-safe, and each release runs on its own engine worker
// pool. When a BudgetLedger is attached (WithBudgetLedger / WithBudgetCap),
// every successful admission charges the requested (ε, δ) and releases past
// the cap fail with ErrBudgetExhausted before touching the data.
type Releaser struct {
	schema *Schema // may be nil (vector-only releases, no attr decoding)
	w      *Workload

	strategy        StrategyKind
	uniformBudget   bool
	skipConsistency bool
	modifyNeighbors bool
	queryWeights    []float64
	workers         int
	shards          int
	cache           *PlanCache
	ledger          *BudgetLedger
	registry        *BudgetRegistry
	composition     Composition
	capEps, capDel  float64
	capSet          bool
	perKeyCaps      map[string]BudgetKeyCaps
	noPreplan       bool
	fabric          *Fabric

	seq atomic.Uint64 // ledger label counter
}

// ReleaserOption configures a Releaser at construction.
type ReleaserOption func(*Releaser) error

// WithStrategy selects the Step-1 strategy matrix (default StrategyFourier).
func WithStrategy(k StrategyKind) ReleaserOption {
	return func(r *Releaser) error {
		switch k {
		case StrategyFourier, StrategyWorkload, StrategyIdentity, StrategyCluster:
			r.strategy = k
			return nil
		default:
			return fmt.Errorf("%w: unknown strategy kind %d", ErrInvalidOption, k)
		}
	}
}

// WithWorkers bounds the engine worker pool for measurement and recovery.
// 0 uses all CPUs; 1 forces serial execution. Released values are
// bit-identical at every setting.
func WithWorkers(n int) ReleaserOption {
	return func(r *Releaser) error {
		if n < 0 {
			return fmt.Errorf("%w: negative worker count %d", ErrInvalidOption, n)
		}
		r.workers = n
		return nil
	}
}

// WithShards bounds how many blocks the engine's measure stage partitions
// the strategy-answer vector into. 0 (the default) auto-shards above the
// engine's row threshold, 1 forces the monolithic path. Like WithWorkers,
// the setting never changes a single bit of the release.
func WithShards(n int) ReleaserOption {
	return func(r *Releaser) error {
		if n < 0 {
			return fmt.Errorf("%w: negative shard count %d", ErrInvalidOption, n)
		}
		r.shards = n
		return nil
	}
}

// WithCache shares a plan cache with other Releasers (a serving process
// typically holds one cache for its whole Releaser registry). Without this
// option the Releaser owns a private cache.
func WithCache(c *PlanCache) ReleaserOption {
	return func(r *Releaser) error {
		if c == nil {
			return fmt.Errorf("%w: nil plan cache", ErrInvalidOption)
		}
		r.cache = c
		return nil
	}
}

// WithBudgetLedger attaches a (possibly shared) cumulative-spend ledger:
// each release charges its (ε, δ) on admission and fails with
// ErrBudgetExhausted once the cap would be passed.
func WithBudgetLedger(l *BudgetLedger) ReleaserOption {
	return func(r *Releaser) error {
		if l == nil {
			return fmt.Errorf("%w: nil budget ledger", ErrInvalidOption)
		}
		r.ledger = l
		return nil
	}
}

// WithBudgetCap is WithBudgetLedger over a fresh private ledger with the
// given total (ε, δ) cap. The ledger is built at the end of construction
// so it composes with WithComposition in either option order; it replaces
// any ledger attached with WithBudgetLedger.
func WithBudgetCap(epsilonCap, deltaCap float64) ReleaserOption {
	return func(r *Releaser) error {
		r.capEps, r.capDel = epsilonCap, deltaCap
		r.capSet = true
		r.perKeyCaps = nil
		return nil
	}
}

// WithBudgetCaps attaches a multi-tenant BudgetRegistry: a private ledger
// per key in perKey (zero caps inherit the global cap), plus the global
// (epsilonCap, deltaCap) ledger that binds across all of them. Releases
// route to a tenant with ReleaseSpec.Key; admission is all-or-nothing
// across the key's ledger and the global one. Like WithBudgetCap, the
// registry is built at the end of construction so WithComposition applies
// in either option order.
func WithBudgetCaps(epsilonCap, deltaCap float64, perKey map[string]BudgetKeyCaps) ReleaserOption {
	return func(r *Releaser) error {
		if len(perKey) == 0 {
			return fmt.Errorf("%w: WithBudgetCaps needs at least one key (use WithBudgetCap for a single-tenant cap)", ErrInvalidOption)
		}
		r.capEps, r.capDel = epsilonCap, deltaCap
		r.capSet = true
		r.perKeyCaps = make(map[string]BudgetKeyCaps, len(perKey))
		for k, caps := range perKey {
			r.perKeyCaps[k] = caps
		}
		return nil
	}
}

// WithComposition selects the accounting mode (BasicComposition,
// ZCDPComposition) of the ledger or registry the Releaser builds through
// WithBudgetCap / WithBudgetCaps. It has no effect on a ledger attached
// with WithBudgetLedger, which already carries its own composition.
func WithComposition(c Composition) ReleaserOption {
	return func(r *Releaser) error {
		if c == nil {
			return fmt.Errorf("%w: nil composition", ErrInvalidOption)
		}
		r.composition = c
		return nil
	}
}

// WithUniformBudget disables the paper's non-uniform Step-2 budgeting and
// reproduces the prior-work baseline.
func WithUniformBudget() ReleaserOption {
	return func(r *Releaser) error { r.uniformBudget = true; return nil }
}

// WithoutConsistency returns raw recovered answers without the Fourier
// consistency projection. Consistency is free post-processing: skipping it
// never changes what a release costs against the budget ledger.
func WithoutConsistency() ReleaserOption {
	return func(r *Releaser) error { r.skipConsistency = true; return nil }
}

// WithModifyNeighbors uses the "modify one tuple" neighbour model
// (sensitivity doubled); the default is add/remove-one-tuple.
func WithModifyNeighbors() ReleaserOption {
	return func(r *Releaser) error { r.modifyNeighbors = true; return nil }
}

// WithQueryWeights weights each workload marginal's importance in the
// Step-2 budgeting (the paper's aᵀ·Var(y) objective). The length must match
// the workload.
func WithQueryWeights(weights []float64) ReleaserOption {
	return func(r *Releaser) error {
		r.queryWeights = append([]float64(nil), weights...)
		return nil
	}
}

// WithFabric attaches a distributed release fabric: ReleaseDataset calls
// then split their Measure and Recover stages across the coordinator's
// worker fleet, merging shard answers into a release bit-identical to the
// single-process path — at any fleet size, including zero healthy workers
// (pure local fallback). Only dataset-backed releases distribute: fabric
// tasks reference datasets by id and content fingerprint rather than
// shipping cells, so Release/ReleaseVector/ReleaseBlocked stay local.
func WithFabric(f *Fabric) ReleaserOption {
	return func(r *Releaser) error {
		if f == nil {
			return fmt.Errorf("%w: nil fabric coordinator", ErrInvalidOption)
		}
		r.fabric = f
		return nil
	}
}

// WithoutPreplan skips the construction-time planning pass. The first
// release then pays the Step-1 cost instead — useful when a Releaser is
// registered speculatively and may never serve a request.
func WithoutPreplan() ReleaserOption {
	return func(r *Releaser) error { r.noPreplan = true; return nil }
}

// NewReleaser validates the configuration, pre-plans the strategy for the
// workload (warming the plan cache) and returns a ready-to-serve Releaser.
// schema may be nil for callers releasing raw contingency vectors; the
// Result then omits attribute indices and Synthetic is unavailable.
func NewReleaser(schema *Schema, w *Workload, opts ...ReleaserOption) (*Releaser, error) {
	return NewReleaserContext(context.Background(), schema, w, opts...)
}

// NewReleaserContext is NewReleaser under a context: cancellation aborts
// the construction-time planning pass (which for the cluster strategy can
// dominate everything else).
func NewReleaserContext(ctx context.Context, schema *Schema, w *Workload, opts ...ReleaserOption) (*Releaser, error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil workload", ErrInvalidOption)
	}
	if len(w.Marginals) == 0 {
		// An empty workload would pass admission (and charge a ledger) only
		// to fail in the engine's budgeting stage — refuse it up front.
		return nil, fmt.Errorf("%w: workload has no marginals", ErrInvalidOption)
	}
	if schema != nil && schema.Dim() != w.D {
		return nil, fmt.Errorf("%w: workload dimension %d, schema dimension %d",
			ErrDimensionMismatch, w.D, schema.Dim())
	}
	r := &Releaser{schema: schema, w: w, strategy: StrategyFourier}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil ReleaserOption", ErrInvalidOption)
		}
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	if r.queryWeights != nil && len(r.queryWeights) != len(w.Marginals) {
		return nil, fmt.Errorf("%w: %d query weights for %d marginals",
			ErrInvalidOption, len(r.queryWeights), len(w.Marginals))
	}
	if r.cache == nil {
		r.cache = NewPlanCache()
	}
	// Budget construction is deferred to here so WithComposition and
	// WithBudgetCap(s) compose in either option order.
	if r.capSet {
		comp := r.composition
		if comp == nil {
			comp = BasicComposition()
		}
		if r.perKeyCaps != nil {
			reg, err := NewBudgetRegistry(r.capEps, r.capDel, comp, r.perKeyCaps)
			if err != nil {
				return nil, err
			}
			r.registry = reg
			r.ledger = nil
		} else {
			l, err := NewBudgetLedgerComposed(r.capEps, r.capDel, comp)
			if err != nil {
				return nil, err
			}
			r.ledger = l
		}
	} else if r.composition != nil && r.ledger == nil {
		return nil, fmt.Errorf("%w: WithComposition needs WithBudgetCap or WithBudgetCaps", ErrInvalidOption)
	}
	if !r.noPreplan {
		planner := engine.Planner{Cache: r.cache, Workers: r.workers}
		if _, err := planner.Plan(ctx, w, engine.Config{
			Strategy:     r.strategy.impl(),
			QueryWeights: r.queryWeights,
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Schema returns the schema the Releaser was constructed with (may be nil).
func (r *Releaser) Schema() *Schema { return r.schema }

// Workload returns the marginal workload the Releaser answers.
func (r *Releaser) Workload() *Workload { return r.w }

// Ledger returns the attached single-tenant budget ledger (nil when spend
// is untracked or tracked per key — see Registry).
func (r *Releaser) Ledger() *BudgetLedger { return r.ledger }

// Registry returns the attached multi-tenant budget registry
// (WithBudgetCaps), or nil.
func (r *Releaser) Registry() *BudgetRegistry { return r.registry }

// Cache returns the Releaser's plan cache (never nil after construction).
func (r *Releaser) Cache() *PlanCache { return r.cache }

// Strategy returns the configured strategy kind.
func (r *Releaser) Strategy() StrategyKind { return r.strategy }

// ReleaseSpec parameterises one release. Everything structural (schema,
// workload, strategy, budgeting mode) lives on the Releaser; the spec holds
// only what legitimately varies per call.
type ReleaseSpec struct {
	// Epsilon is this release's privacy budget (required, > 0).
	Epsilon float64
	// Delta switches this release to (ε, δ)-DP with Gaussian noise when
	// positive.
	Delta float64
	// Seed makes the release reproducible; 0 is a valid fixed seed.
	Seed int64
	// Workers optionally overrides the Releaser's worker bound for this
	// call (a server bounding per-request parallelism); 0 keeps the
	// Releaser's setting.
	Workers int
	// Shards optionally overrides the Releaser's measure-stage shard bound
	// for this call; 0 keeps the Releaser's setting. Like Workers, shards
	// never change a single bit of the release.
	Shards int
	// Label names the release in the budget ledger; empty generates
	// "release-N".
	Label string
	// Partition names the disjoint population slice for parallel
	// composition in the ledger; empty means the whole population.
	Partition string
	// Key names the tenant whose ledger this release charges when the
	// Releaser carries a per-key BudgetRegistry (WithBudgetCaps); empty
	// charges only the global ledger. With a plain ledger a non-empty Key
	// is refused — silently billing one tenant's release to a shared pot
	// would be an accounting bug, not a convenience.
	Key string
}

// Release privately answers the Releaser's workload over the table.
func (r *Releaser) Release(ctx context.Context, t *Table, spec ReleaseSpec) (*Result, error) {
	if t == nil || t.Schema == nil {
		return nil, fmt.Errorf("%w: nil table or schema", ErrInvalidOption)
	}
	if t.Schema.Dim() != r.w.D {
		return nil, fmt.Errorf("%w: workload dimension %d, table schema dimension %d",
			ErrDimensionMismatch, r.w.D, t.Schema.Dim())
	}
	x, err := t.Vector()
	if err != nil {
		return nil, err
	}
	return r.ReleaseVector(ctx, x, spec)
}

// ReleaseVector is Release for callers who already hold the contingency
// vector.
func (r *Releaser) ReleaseVector(ctx context.Context, x []float64, spec ReleaseSpec) (*Result, error) {
	if len(x) != 1<<uint(r.w.D) {
		return nil, fmt.Errorf("%w: data vector has %d entries, domain needs %d",
			ErrDimensionMismatch, len(x), 1<<uint(r.w.D))
	}
	return r.ReleaseBlocked(ctx, vector.FromDense(x), spec)
}

// ReleaseBlocked is ReleaseVector for callers holding the contingency
// vector in sharded form — the dataset store's aggregate reaches the engine
// here without ever being gathered into one dense slice. Bit-identical to
// ReleaseVector over the same cells at the same spec, whatever the
// blocking.
func (r *Releaser) ReleaseBlocked(ctx context.Context, x *BlockedVector, spec ReleaseSpec) (*Result, error) {
	return r.releaseBlocked(ctx, x, spec, engine.Stages{})
}

// releaseBlocked is the shared release path; stages optionally overrides
// pipeline stages (the fabric's distributing Measure/Recover), zero-value
// fields falling back to the engine defaults.
func (r *Releaser) releaseBlocked(ctx context.Context, x *BlockedVector, spec ReleaseSpec, stages engine.Stages) (*Result, error) {
	if err := validatePrivacy(spec.Epsilon, spec.Delta); err != nil {
		return nil, err
	}
	if x == nil || x.Len() != 1<<uint(r.w.D) {
		got := 0
		if x != nil {
			got = x.Len()
		}
		return nil, fmt.Errorf("%w: data vector has %d entries, domain needs %d",
			ErrDimensionMismatch, got, 1<<uint(r.w.D))
	}
	if err := r.charge(ctx, spec); err != nil {
		return nil, err
	}
	cons := core.WeightedL2Consistency
	if r.skipConsistency {
		cons = core.NoConsistency
	}
	budgeting := core.OptimalBudget
	if r.uniformBudget {
		budgeting = core.UniformBudget
	}
	workers := r.workers
	if spec.Workers > 0 {
		workers = spec.Workers
	}
	shards := r.shards
	if spec.Shards > 0 {
		shards = spec.Shards
	}
	rel, err := engine.NewWithStages(
		engine.Options{Workers: workers, Shards: shards, Cache: r.cache},
		stages,
	).RunVector(ctx, r.w, x, core.Config{
		Strategy:     r.strategy.impl(),
		Budgeting:    budgeting,
		Consistency:  cons,
		Privacy:      r.params(spec),
		Seed:         spec.Seed,
		QueryWeights: r.queryWeights,
	})
	if err != nil {
		return nil, err
	}
	return buildResult(r.w, r.schema, rel), nil
}

// ReleaseDataset privately answers the Releaser's workload over an ingested
// dataset — the upload-once / release-many path. The handle's pre-aggregated
// contingency vector feeds the engine directly, skipping re-vectorization,
// so the release is bit-identical to Release over the same rows at the same
// spec. The caller keeps ownership of the handle (and must Close it); the
// Releaser only reads through it for the duration of the call.
func (r *Releaser) ReleaseDataset(ctx context.Context, h *DatasetHandle, spec ReleaseSpec) (*Result, error) {
	if h == nil {
		return nil, fmt.Errorf("%w: nil dataset handle", ErrInvalidOption)
	}
	if h.Schema().Dim() != r.w.D {
		return nil, fmt.Errorf("%w: workload dimension %d, dataset %q dimension %d",
			ErrDimensionMismatch, r.w.D, h.ID(), h.Schema().Dim())
	}
	// Two schemas can share a bit-width with different attribute layouts
	// (one 16-ary column vs two 4-ary ones); releasing across that boundary
	// would silently mislabel every marginal, so require attribute-level
	// equality whenever the Releaser knows its schema.
	if r.schema != nil && !r.schema.Equal(h.Schema()) {
		return nil, fmt.Errorf("%w: dataset %q schema does not match the Releaser's schema",
			ErrDimensionMismatch, h.ID())
	}
	var stages engine.Stages
	if r.fabric != nil {
		// Fresh stages per release: they carry single-release state. The
		// dataset handshake ships the handle's content fingerprint — every
		// worker's resident copy must hold these exact bits.
		stages = r.fabric.Stages(r.w, fabric.DatasetRef{ID: h.ID(), Fingerprint: h.Fingerprint()})
	}
	return r.releaseBlocked(ctx, h.Vector(), spec, stages)
}

// Synthetic converts a consistent release from this Releaser into row-level
// synthetic microdata (see SyntheticData). Post-processing adds no privacy
// cost: the ledger is not charged.
func (r *Releaser) Synthetic(ctx context.Context, res *Result, seed int64) (*Table, error) {
	if r.schema == nil {
		return nil, fmt.Errorf("%w: Releaser has no schema; synthetic data needs one", ErrInvalidOption)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return SyntheticData(r.schema, r.w, res, seed)
}

// EffectiveSigma describes one release at the spec's privacy parameters as
// a single Gaussian mechanism: the returned σ, under the Sensitivity = 1
// convention, carries the release's exact zCDP cost ρ = 1/(2σ²).
//
// Derivation: the measure stage answers strategy group g (non-zero
// magnitude C_g, support-disjoint rows) with Gaussian noise of scale
// σ_g = √(2·ln(2/δ))/η_g. In noise-normalised coordinates one changed
// tuple moves the measurement vector by at most
// Δ = κ·√(Σ_g C_g²·η_g²)/√(2·ln(2/δ)) (κ the neighbour-model factor), so
// the whole release is one sensitivity-Δ unit-noise Gaussian mechanism and
// σ_eff = 1/Δ. When the allocator saturates the Proposition 3.1 constraint
// (Σ_g C_g²·η_g² = (ε/κ)²) this reduces to σ_eff = √(2·ln(2/δ))/ε — the
// same ρ the accountant's (ε, δ) conversion assumes; an unsaturated
// allocation (groups the recovery never reads spend nothing) yields a
// strictly larger σ_eff, i.e. a strictly cheaper, still exact, ρ.
//
// Pure-DP specs (Delta == 0) return 0: Laplace noise has no Gaussian
// description, and zCDP accounting falls back to ε-DP ⇒ (ε²/2)-zCDP.
// Planning runs through the Releaser's cache, so after the first call (or
// construction-time preplan) the cost is a closed-form allocation.
func (r *Releaser) EffectiveSigma(ctx context.Context, spec ReleaseSpec) (float64, error) {
	if spec.Delta <= 0 {
		return 0, nil
	}
	if err := validatePrivacy(spec.Epsilon, spec.Delta); err != nil {
		return 0, err
	}
	budgeting := engine.OptimalBudget
	if r.uniformBudget {
		budgeting = engine.UniformBudget
	}
	cfg := engine.Config{
		Strategy:     r.strategy.impl(),
		Budgeting:    budgeting,
		Privacy:      r.params(spec),
		QueryWeights: r.queryWeights,
	}
	plan, err := engine.Planner{Cache: r.cache, Workers: r.workers}.Plan(ctx, r.w, cfg)
	if err != nil {
		return 0, err
	}
	alloc, err := engine.Allocator{}.Allocate(ctx, plan.Specs, cfg)
	if err != nil {
		return 0, err
	}
	load2 := 0.0
	for g, sp := range plan.Specs {
		load2 += sp.C * sp.C * alloc.Eta[g] * alloc.Eta[g]
	}
	if load2 <= 0 {
		return 0, fmt.Errorf("%w: allocation spends no budget on any group", ErrInvalidOption)
	}
	kappa := cfg.Privacy.Neighbor.Factor()
	return math.Sqrt(2*math.Log(2/spec.Delta)) / (kappa * math.Sqrt(load2)), nil
}

// charge performs ledger admission: an atomic check-and-record, so
// concurrent releases can never jointly pass the cap. Budget is committed
// at admission — a release that fails after admission (cancellation
// included) still counts as spent, the conservative reading required for
// the DP guarantee to survive partial executions.
func (r *Releaser) charge(ctx context.Context, spec ReleaseSpec) error {
	if r.ledger == nil && r.registry == nil {
		if spec.Key != "" {
			return fmt.Errorf("%w: ReleaseSpec.Key %q without a budget registry (WithBudgetCaps)", ErrInvalidOption, spec.Key)
		}
		return nil
	}
	label := spec.Label
	if label == "" {
		label = fmt.Sprintf("release-%d", r.seq.Add(1))
	}
	c := BudgetCharge{
		Label:     label,
		Epsilon:   spec.Epsilon,
		Delta:     spec.Delta,
		Partition: spec.Partition,
	}
	// Gaussian releases additionally carry their exact mechanism
	// description: zCDP composition then charges ρ = 1/(2σ²) directly
	// instead of the (ε, δ) conversion bound. Best-effort — a planning
	// failure here leaves σ = 0 (the conservative conversion) and will
	// resurface as the release's own error.
	if spec.Delta > 0 {
		if sigma, err := r.EffectiveSigma(ctx, spec); err == nil && sigma > 0 {
			c.Sigma = sigma
			c.Sensitivity = 1
		}
	}
	var err error
	if r.registry != nil {
		err = r.registry.Charge(spec.Key, c)
	} else {
		if spec.Key != "" {
			return fmt.Errorf("%w: ReleaseSpec.Key %q needs a per-key registry (WithBudgetCaps), not a plain ledger", ErrInvalidOption, spec.Key)
		}
		err = r.ledger.Charge(c)
	}
	if err != nil {
		if errors.Is(err, accountant.ErrBudgetExceeded) {
			return fmt.Errorf("%w: %v", ErrBudgetExhausted, err)
		}
		return err
	}
	return nil
}

// params maps a spec onto the Releaser's neighbour model.
func (r *Releaser) params(spec ReleaseSpec) noise.Params {
	o := Options{
		Epsilon:         spec.Epsilon,
		Delta:           spec.Delta,
		ModifyNeighbors: r.modifyNeighbors,
	}
	return o.params()
}

// buildResult shapes an engine release into the public per-marginal form.
func buildResult(w *Workload, schema *Schema, rel *core.Release) *Result {
	res := &Result{
		Answers:       rel.Answers,
		TotalVariance: rel.TotalVariance,
		Strategy:      rel.StrategyName,
	}
	per := core.PerMarginal(w, rel.Answers)
	res.Tables = make([]MarginalTable, len(w.Marginals))
	for i, m := range w.Marginals {
		mt := MarginalTable{
			Mask:     m.Alpha,
			Cells:    per[i],
			Variance: rel.CellVariances[i],
		}
		if schema != nil {
			for ai := range schema.Attrs {
				am := schema.AttrMask(ai)
				if m.Alpha&am != 0 {
					mt.Attrs = append(mt.Attrs, ai)
				}
			}
		}
		res.Tables[i] = mt
	}
	return res
}
