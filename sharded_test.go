package repro

import (
	"context"
	"math"
	"testing"
)

// TestReleaseBlockedBitIdentical: the sharded public entry points
// (ReleaseBlocked, WithShards, ReleaseSpec.Shards) reproduce ReleaseVector
// bit for bit.
func TestReleaseBlockedBitIdentical(t *testing.T) {
	tab := SyntheticNLTCS(5, 3000)
	schema := tab.Schema
	x, err := tab.Vector()
	if err != nil {
		t.Fatal(err)
	}
	w := AllKWayMarginals(schema, 2)
	spec := ReleaseSpec{Epsilon: 1, Seed: 13}

	base, err := NewReleaser(schema, w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.ReleaseVector(context.Background(), x, spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 8} {
		r, err := NewReleaser(schema, w, WithShards(shards), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReleaseBlocked(context.Background(), NewBlockedVector(x), spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range ref.Answers {
			if math.Float64bits(got.Answers[i]) != math.Float64bits(ref.Answers[i]) {
				t.Fatalf("shards=%d: answer %d differs", shards, i)
			}
		}
	}

	// Per-call override through the spec.
	specShards := spec
	specShards.Shards = 5
	got, err := base.ReleaseVector(context.Background(), x, specShards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Answers {
		if math.Float64bits(got.Answers[i]) != math.Float64bits(ref.Answers[i]) {
			t.Fatalf("spec.Shards: answer %d differs", i)
		}
	}

	if _, err := NewReleaser(schema, w, WithShards(-1)); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
