// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md, "Experiment index"). Each benchmark runs a reduced but
// structurally faithful configuration so the whole suite finishes in
// minutes; cmd/experiments reproduces the paper-scale versions (full 23-bit
// Adult domain, full ε grid, all workloads) and EXPERIMENTS.md records a
// complete run.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/budget"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/marginal"
	"repro/internal/noise"
	"repro/internal/rangequery"
	"repro/internal/recovery"
	"repro/internal/strategy"

	"repro/internal/bits"
)

func pureParams(eps float64) noise.Params {
	return noise.Params{Type: noise.PureDP, Epsilon: eps, Neighbor: noise.AddRemove}
}

// reducedAdult is a bench-scale stand-in for the 23-bit Adult domain: the
// same eight attributes with cardinalities trimmed to land on a 14-bit
// domain, preserving the mixed-cardinality structure of Figure 4.
func reducedAdult(tuples int) *dataset.Table {
	s := dataset.MustSchema([]dataset.Attribute{
		{Name: "workclass", Cardinality: 4},
		{Name: "education", Cardinality: 8},
		{Name: "marital-status", Cardinality: 4},
		{Name: "occupation", Cardinality: 8},
		{Name: "relationship", Cardinality: 4},
		{Name: "race", Cardinality: 4},
		{Name: "sex", Cardinality: 2},
		{Name: "salary", Cardinality: 2},
	})
	rows := make([][]int, tuples)
	for i := range rows {
		rows[i] = []int{
			i % 4, (i * 7) % 8, (i / 4) % 4, (i * 3) % 8,
			(i / 16) % 4, (i * 5) % 4, i % 2, (i / 2) % 2,
		}
	}
	return &dataset.Table{Schema: s, Rows: rows}
}

func vectorOf(b *testing.B, t *dataset.Table) []float64 {
	b.Helper()
	x, err := t.Vector()
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// accuracyBench runs one (dataset, workload) accuracy sweep per iteration:
// all seven methods at one ε, one trial — the unit of work behind each
// panel of Figures 4 and 5.
func accuracyBench(b *testing.B, name string, tab *dataset.Table, workload string, cluster bool) {
	b.Helper()
	x := vectorOf(b, tab)
	ws := experiments.SchemaWorkloads(tab.Schema)
	w := ws.ByName[workload]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AccuracySweep(context.Background(), name, workload, w, x,
			experiments.Methods(cluster), []float64{0.5}, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: Adult accuracy panels (reduced domain; full via cmd) ---

func BenchmarkFig4AdultQ1(b *testing.B) { accuracyBench(b, "adult", reducedAdult(32561), "Q1", true) }
func BenchmarkFig4AdultQ1Star(b *testing.B) {
	accuracyBench(b, "adult", reducedAdult(32561), "Q1*", true)
}
func BenchmarkFig4AdultQ1A(b *testing.B) { accuracyBench(b, "adult", reducedAdult(32561), "Q1a", true) }
func BenchmarkFig4AdultQ2(b *testing.B)  { accuracyBench(b, "adult", reducedAdult(32561), "Q2", true) }
func BenchmarkFig4AdultQ2Star(b *testing.B) {
	accuracyBench(b, "adult", reducedAdult(32561), "Q2*", false)
}
func BenchmarkFig4AdultQ2A(b *testing.B) {
	accuracyBench(b, "adult", reducedAdult(32561), "Q2a", false)
}

// --- Figure 5: NLTCS accuracy panels (paper-scale d = 16 domain) ---

func nltcs() *dataset.Table { return dataset.SyntheticNLTCS(1, dataset.NLTCSTupleCount) }

func BenchmarkFig5NLTCSQ1(b *testing.B)     { accuracyBench(b, "nltcs", nltcs(), "Q1", true) }
func BenchmarkFig5NLTCSQ1Star(b *testing.B) { accuracyBench(b, "nltcs", nltcs(), "Q1*", true) }
func BenchmarkFig5NLTCSQ1A(b *testing.B)    { accuracyBench(b, "nltcs", nltcs(), "Q1a", true) }
func BenchmarkFig5NLTCSQ2(b *testing.B)     { accuracyBench(b, "nltcs", nltcs(), "Q2", false) }
func BenchmarkFig5NLTCSQ2Star(b *testing.B) { accuracyBench(b, "nltcs", nltcs(), "Q2*", false) }
func BenchmarkFig5NLTCSQ2A(b *testing.B)    { accuracyBench(b, "nltcs", nltcs(), "Q2a", false) }

// --- Figure 6: end-to-end running time per strategy over NLTCS ---

func timeBench(b *testing.B, s strategy.Strategy, budgeting core.Budgeting, workload string) {
	b.Helper()
	tab := nltcs()
	x := vectorOf(b, tab)
	w := experiments.SchemaWorkloads(tab.Schema).ByName[workload]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(w, x, core.Config{
			Strategy: s, Budgeting: budgeting,
			Consistency: core.WeightedL2Consistency,
			Privacy:     pureParams(1), Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TimeNLTCSQ1Identity(b *testing.B) {
	timeBench(b, strategy.Identity{}, core.UniformBudget, "Q1")
}
func BenchmarkFig6TimeNLTCSQ1Workload(b *testing.B) {
	timeBench(b, strategy.Workload{}, core.OptimalBudget, "Q1")
}
func BenchmarkFig6TimeNLTCSQ1Fourier(b *testing.B) {
	timeBench(b, strategy.Fourier{}, core.OptimalBudget, "Q1")
}
func BenchmarkFig6TimeNLTCSQ1Cluster(b *testing.B) {
	timeBench(b, strategy.Cluster{}, core.OptimalBudget, "Q1")
}
func BenchmarkFig6TimeNLTCSQ2Fourier(b *testing.B) {
	timeBench(b, strategy.Fourier{}, core.OptimalBudget, "Q2")
}
func BenchmarkFig6TimeNLTCSQ2Cluster(b *testing.B) {
	// The expensive clustering search of [6]: expect two to four orders of
	// magnitude above the Fourier run — the Figure 6 gap.
	timeBench(b, strategy.Cluster{}, core.OptimalBudget, "Q2")
}

// --- Table 1: error bounds vs measured noise ---

func BenchmarkTable1Bounds(b *testing.B) {
	p := pureParams(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1Rows(context.Background(), []int{10, 12}, []int{1, 2}, p, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 1 worked example ---

func BenchmarkIntroExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		uniform, nonUniform, gls, err := experiments.IntroExample()
		if err != nil {
			b.Fatal(err)
		}
		if !(gls < nonUniform && nonUniform < uniform) {
			b.Fatalf("worked-example ordering broken: %v %v %v", gls, nonUniform, uniform)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationBudgeting compares the three budgeting paths on the
// intro strategy: uniform, closed-form optimal, and the general KKT solver.
func BenchmarkAblationBudgeting(b *testing.B) {
	w := marginal.MustWorkload(3, []bits.Mask{0b100, 0b110})
	rows := w.Rows()
	weights := make([]float64, len(rows))
	for i := range weights {
		weights[i] = 1
	}
	g, err := budget.FindGrouping(rows)
	if err != nil {
		b.Fatal(err)
	}
	p := pureParams(1)
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := budget.Uniform(g, weights, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimal-closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := budget.Optimal(g, weights, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-kkt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := budget.General(rows, weights, p, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRecovery compares keeping the initial recovery against
// recomputing it by GLS (Step 3) on the intro example.
func BenchmarkAblationRecovery(b *testing.B) {
	w := marginal.MustWorkload(3, []bits.Mask{0b100, 0b110})
	q := w.Rows()
	variances := []float64{10.125, 10.125, 6.48, 6.48, 6.48, 6.48} // intro budgets
	b.Run("fixed-R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0.0
			for _, v := range variances {
				total += v
			}
			if total < 40 {
				b.Fatal("unexpected")
			}
		}
	})
	b.Run("gls-R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := recovery.Matrix(q, q, variances)
			if err != nil {
				b.Fatal(err)
			}
			if tv := recovery.TotalVariance(r, variances, nil); tv > 34.62 {
				b.Fatalf("GLS variance %v regressed above the paper's 34.6", tv)
			}
		}
	})
}

// BenchmarkAblationConsistency compares the consistency modes on one noisy
// NLTCS Q1* release.
func BenchmarkAblationConsistency(b *testing.B) {
	tab := dataset.SyntheticBinary(5, 10, 4000)
	x, err := tab.Vector()
	if err != nil {
		b.Fatal(err)
	}
	w := experiments.SchemaWorkloads(tab.Schema).ByName["Q1*"]
	rel, err := core.Run(w, x, core.Config{
		Strategy: strategy.Workload{}, Budgeting: core.OptimalBudget,
		Privacy: pureParams(0.5), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	noisy := rel.Answers
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = noisy
		}
	})
	b.Run("L2-closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := consistency.L2(w, noisy); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("L1-lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := consistency.L1(w, noisy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSinglePassEval quantifies the single-pass marginal
// evaluation against per-marginal passes (the data-handling cost dominating
// Figure 6's fast strategies).
func BenchmarkAblationSinglePassEval(b *testing.B) {
	tab := nltcs()
	x := vectorOf(b, tab)
	w := marginal.SchemaKWay(tab.Schema, 2)
	b.Run("per-marginal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = w.Eval(x)
		}
	})
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = w.EvalSinglePass(x)
		}
	})
}

// BenchmarkAblationRangeStrategies compares the range-query strategies
// (internal/rangequery) under uniform and optimal per-level budgets — the
// [4]/[14]/[23] setting the paper generalises.
func BenchmarkAblationRangeStrategies(b *testing.B) {
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 17)
	}
	// A sampled workload keeps the wavelet's per-query indicator transforms
	// affordable; AllRanges(n) would carry Θ(n²) queries.
	ivs := make([]rangequery.Interval, 0, 2000)
	for i := 0; i < 2000; i++ {
		lo := (i * 131) % n
		hi := lo + 1 + (i*37)%(n-lo)
		ivs = append(ivs, rangequery.Interval{Lo: lo, Hi: hi})
	}
	w, err := rangequery.NewWorkload(n, ivs)
	if err != nil {
		b.Fatal(err)
	}
	p := pureParams(1)
	for _, m := range []rangequery.Method{rangequery.Flat, rangequery.Hierarchy, rangequery.Wavelet} {
		for _, budgets := range []string{"uniform", "optimal"} {
			b.Run(m.String()+"-"+budgets, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := rangequery.Run(w, x, m, budgets, p, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Engine: serial vs parallel release, plan-cache hit vs miss ---
//
// The staged engine's determinism contract (internal/engine) means the
// serial and parallel releases below compute identical outputs; the
// benchmarks measure the wall-clock gap. The identity strategy on a 16-
// attribute cube makes measurement (2^16 noise draws) and per-marginal
// recovery (120 marginals × 2^16 accumulations) the dominant stages — the
// shape a serving deployment sees on wide schemas. The parallel variant
// sizes its pool to GOMAXPROCS, so the gap over serial scales with the
// machine's core count (on a single-core box the two paths coincide).

func engineReleaseBench(b *testing.B, workers int) {
	b.Helper()
	tab := dataset.SyntheticBinary(3, 16, 30000)
	x := vectorOf(b, tab)
	w := marginal.SchemaKWay(tab.Schema, 2)
	eng := engine.New(engine.Options{Workers: workers})
	cfg := engine.Config{
		Strategy: strategy.Identity{}, Budgeting: core.UniformBudget,
		Consistency: core.NoConsistency, Privacy: pureParams(1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := eng.Run(w, x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReleaseD16Q2Serial(b *testing.B)   { engineReleaseBench(b, 1) }
func BenchmarkEngineReleaseD16Q2Parallel(b *testing.B) { engineReleaseBench(b, 0) }

// Plan caching isolates Step 1 — for the cluster strategy the greedy search
// dominates the whole release (Figure 6), so a cache hit removes almost all
// of the cost. Miss rebuilds the plan every iteration (fresh cache); hit
// reuses one warm entry.

func planCacheBench(b *testing.B, warm bool) {
	b.Helper()
	tab := dataset.SyntheticBinary(4, 10, 4000)
	x := vectorOf(b, tab)
	w := marginal.SchemaKWay(tab.Schema, 2)
	cfg := engine.Config{
		Strategy: strategy.Cluster{}, Budgeting: core.OptimalBudget,
		Consistency: core.WeightedL2Consistency, Privacy: pureParams(1),
	}
	var eng *engine.Engine
	if warm {
		eng = engine.New(engine.Options{Workers: 1, Cache: engine.NewPlanCache(0)})
		if _, err := eng.Run(w, x, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			eng = engine.New(engine.Options{Workers: 1, Cache: engine.NewPlanCache(0)})
		}
		cfg.Seed = int64(i)
		if _, err := eng.Run(w, x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanCacheMissClusterD10Q2(b *testing.B) { planCacheBench(b, false) }
func BenchmarkPlanCacheHitClusterD10Q2(b *testing.B)  { planCacheBench(b, true) }
