package repro

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// TestReleaserMatchesFreeFunction: the service API and the legacy one-shot
// wrapper are the same mechanism — bit-identical output for the same seed.
func TestReleaserMatchesFreeFunction(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	want, err := Release(tab, w, Options{Epsilon: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReleaser(tab.Schema, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Release(context.Background(), tab, ReleaseSpec{Epsilon: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("answer lengths differ: %d vs %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if math.Float64bits(want.Answers[i]) != math.Float64bits(got.Answers[i]) {
			t.Fatalf("answer %d differs: %v vs %v", i, want.Answers[i], got.Answers[i])
		}
	}
}

// TestReleaserPreplansCache: construction warms the plan cache, so the
// first release is already a cache hit.
func TestReleaserPreplansCache(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	cache := NewPlanCache()
	r, err := NewReleaser(tab.Schema, w, WithCache(cache), WithStrategy(StrategyCluster))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("construction should have planned exactly once: %+v", st)
	}
	if _, err := r.Release(context.Background(), tab, ReleaseSpec{Epsilon: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("first release should hit the warmed cache: %+v", st)
	}
}

// TestReleaserTypedErrors: construction and admission failures carry the
// typed sentinels so callers (and the HTTP layer) can branch on errors.Is.
func TestReleaserTypedErrors(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	other := MustSchema([]Attribute{{Name: "x", Cardinality: 2}})

	if _, err := NewReleaser(other, w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("schema/workload mismatch: got %v", err)
	}
	if _, err := NewReleaser(tab.Schema, nil); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("nil workload: got %v", err)
	}
	if _, err := NewReleaser(tab.Schema, w, WithWorkers(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("negative workers: got %v", err)
	}
	if _, err := NewReleaser(tab.Schema, w, WithQueryWeights([]float64{1})); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("mis-sized query weights: got %v", err)
	}
	if _, err := NewReleaser(tab.Schema, w, WithStrategy(StrategyKind(99))); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("unknown strategy: got %v", err)
	}

	r, err := NewReleaser(tab.Schema, w)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("zero epsilon: got %v", err)
	}
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 1, Delta: 1.5}); !errors.Is(err, ErrInvalidDelta) {
		t.Fatalf("delta out of range: got %v", err)
	}
	if _, err := r.ReleaseVector(ctx, make([]float64, 4), ReleaseSpec{Epsilon: 1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short vector: got %v", err)
	}
	// The legacy free functions surface the same sentinels.
	if _, err := Release(tab, w, Options{}); !errors.Is(err, ErrInvalidEpsilon) {
		t.Fatalf("free function zero epsilon: got %v", err)
	}
	if _, err := Release(nil, w, Options{Epsilon: 1}); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("free function nil table: got %v", err)
	}
}

// TestReleaserBudgetLedger: cumulative spend is tracked, concurrent
// releases never jointly pass the cap, and refusal spends nothing.
func TestReleaserBudgetLedger(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	r, err := NewReleaser(tab.Schema, w, WithBudgetCap(1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.4, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	eps, _ := r.Ledger().Spent()
	if math.Abs(eps-0.9) > 1e-12 {
		t.Fatalf("spent ε = %v, want 0.9", eps)
	}
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.2, Seed: 3}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-cap release: got %v", err)
	}
	// The refused release spent nothing.
	if eps, _ := r.Ledger().Spent(); math.Abs(eps-0.9) > 1e-12 {
		t.Fatalf("refused release changed spend to %v", eps)
	}
	// The remaining 0.1 is still usable.
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.1, Seed: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaserBudgetLedgerConcurrent: the ledger's check-and-charge is
// atomic — out of 20 concurrent ε=0.1 requests against a cap of 1.0,
// exactly 10 succeed.
func TestReleaserBudgetLedgerConcurrent(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	r, err := NewReleaser(tab.Schema, w, WithBudgetCap(1.0+1e-9, 0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]error, 20)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = r.Release(context.Background(), tab,
				ReleaseSpec{Epsilon: 0.1, Seed: int64(i)})
		}(i)
	}
	wg.Wait()
	ok, exhausted := 0, 0
	for _, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrBudgetExhausted):
			exhausted++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != 10 || exhausted != 10 {
		t.Fatalf("%d succeeded / %d exhausted, want 10/10", ok, exhausted)
	}
}

// TestReleaserSharedLedgerAcrossReleasers: one ledger caps the combined
// spend of several Releasers — the multi-workload serving deployment.
func TestReleaserSharedLedgerAcrossReleasers(t *testing.T) {
	tab := smallTable()
	ledger, err := NewBudgetLedger(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewReleaser(tab.Schema, AllKWayMarginals(tab.Schema, 1), WithBudgetLedger(ledger))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReleaser(tab.Schema, AllKWayMarginals(tab.Schema, 2), WithBudgetLedger(ledger))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r1.Release(ctx, tab, ReleaseSpec{Epsilon: 0.6, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Release(ctx, tab, ReleaseSpec{Epsilon: 0.6, Seed: 2}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("shared ledger must cap combined spend: got %v", err)
	}
}

// TestReleaserCancellation: a cancelled context aborts the release. The
// budget is charged at admission (conservative), so the spend stands.
func TestReleaserCancellation(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	r, err := NewReleaser(tab.Schema, w, WithBudgetCap(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 1, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if eps, _ := r.Ledger().Spent(); eps != 1 {
		t.Fatalf("admitted-then-cancelled release must stay charged, spent ε = %v", eps)
	}
}

// TestReleaserSynthetic: synthetic microdata from the service API is free
// post-processing — no additional ledger spend.
func TestReleaserSynthetic(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	r, err := NewReleaser(tab.Schema, w, WithBudgetCap(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := r.Synthetic(ctx, res, 8)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Count() == 0 {
		t.Fatal("synthetic table is empty")
	}
	if eps, _ := r.Ledger().Spent(); eps != 2 {
		t.Fatalf("synthetic generation changed spend to %v", eps)
	}
}

// TestEffectiveSigma: the single-Gaussian description of a release. The
// optimal and uniform allocators both saturate the Proposition 3.1
// constraint Σ C_g²·η_g² = (ε/κ)², so σ_eff must equal the closed form
// √(2·ln(2/δ))/ε — under either neighbour model, since κ cancels at
// saturation. Pure-DP specs have no Gaussian description and return 0.
func TestEffectiveSigma(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 2)
	ctx := context.Background()

	const eps, delta = 0.5, 1e-6
	want := math.Sqrt(2*math.Log(2/delta)) / eps
	for name, opts := range map[string][]ReleaserOption{
		"fourier-optimal": nil,
		"uniform-budget":  {WithUniformBudget()},
		"identity":        {WithStrategy(StrategyIdentity)},
		"modify-model":    {WithModifyNeighbors()},
	} {
		r, err := NewReleaser(tab.Schema, w, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sigma, err := r.EffectiveSigma(ctx, ReleaseSpec{Epsilon: eps, Delta: delta})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sigma-want) > 1e-9*want {
			t.Fatalf("%s: σ_eff = %v, want %v (saturated constraint)", name, sigma, want)
		}
		if s, err := r.EffectiveSigma(ctx, ReleaseSpec{Epsilon: eps}); err != nil || s != 0 {
			t.Fatalf("%s: pure-DP σ_eff = %v, %v, want 0, nil", name, s, err)
		}
	}
}

// TestChargeCarriesSigma: a Gaussian release against a zCDP ledger records
// its exact mechanism description — the accountant then composes
// ρ = 1/(2σ²) instead of the (ε, δ) conversion bound.
func TestChargeCarriesSigma(t *testing.T) {
	tab := smallTable()
	w := AllKWayMarginals(tab.Schema, 1)
	comp, err := ZCDPComposition(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReleaser(tab.Schema, w, WithBudgetCap(10, 1e-3), WithComposition(comp))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.5, Delta: 1e-5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Release(ctx, tab, ReleaseSpec{Epsilon: 0.5, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	hist := r.Ledger().History()
	if len(hist) != 2 {
		t.Fatalf("ledger holds %d charges, want 2", len(hist))
	}
	wantSigma, err := r.EffectiveSigma(ctx, ReleaseSpec{Epsilon: 0.5, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if hist[0].Sigma != wantSigma || hist[0].Sensitivity != 1 {
		t.Fatalf("Gaussian charge recorded (σ=%v, Δ=%v), want (σ=%v, Δ=1)",
			hist[0].Sigma, hist[0].Sensitivity, wantSigma)
	}
	if hist[1].Sigma != 0 || hist[1].Sensitivity != 0 {
		t.Fatalf("Laplace charge must not carry a Gaussian description, got %+v", hist[1])
	}
}
