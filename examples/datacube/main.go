// Datacube: release a private OLAP cube (all cuboids up to order 2) of a
// retail-like table and navigate it with roll-up, slice and dice — showing
// that the released cuboids behave like a real, mutually consistent cube.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "region", Cardinality: 4},
		{Name: "product", Cardinality: 6},
		{Name: "channel", Cardinality: 2}, // 0:store 1:online
		{Name: "returned", Cardinality: 2},
	})
	rows := make([][]int, 0, 12000)
	for i := 0; i < 12000; i++ {
		region := i % 4
		product := (i * 7 % 13) % 6
		channel := 0
		if (i+region)%3 == 0 {
			channel = 1
		}
		returned := 0
		if channel == 1 && i%8 == 0 { // online returns more
			returned = 1
		}
		rows = append(rows, []int{region, product, channel, returned})
	}
	table := &repro.Table{Schema: schema, Rows: rows}

	cube, err := repro.ReleaseCube(table, 2, repro.Options{Epsilon: 1, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("released %d cuboids; max lattice inconsistency %.2g (must be ~0)\n\n",
		len(cube.Lattice.Cuboids), cube.ConsistencyError())

	fmt.Printf("grand total (apex): %.1f  (true 12000)\n\n", cube.Total())

	// Roll-up: (region, channel) rolled up to region equals the released
	// region cuboid — the defining property of a consistent cube.
	up, err := cube.RollUp([]int{0, 2}, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	region, err := cube.Cuboid(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("roll-up (region,channel) → region vs released region cuboid:")
	for v := 0; v < 4; v++ {
		fmt.Printf("  region %d: rolled-up %8.1f   released %8.1f   diff %.2g\n",
			v, up[v], region[v], math.Abs(up[v]-region[v]))
	}

	// Slice: online sales per region.
	online, rest, err := cube.Slice([]int{0, 2}, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslice channel=online over %v:\n", rest)
	for v := 0; v < 4; v++ {
		fmt.Printf("  region %d: %8.1f\n", v, online[v])
	}

	// Dice: keep only the first two product lines in (product, returned).
	diced, err := cube.Dice([]int{1, 3}, map[int]func(int) bool{
		1: func(v int) bool { return v < 2 },
	})
	if err != nil {
		log.Fatal(err)
	}
	kept := 0.0
	for _, v := range diced {
		kept += v
	}
	fmt.Printf("\ndice product<2 over (product,returned): retained mass %.1f of %.1f\n",
		kept, cube.Total())
}
