// Disability: release overlapping marginals of an NLTCS-like binary survey
// and demonstrate the consistency machinery of Sections 3.3/4.3 — without
// the consistency step the released tables contradict each other (different
// totals, different shared sub-marginals); with it they are marginals of one
// common hidden dataset at essentially no accuracy cost.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	table := repro.SyntheticNLTCS(7, 21576)
	schema := table.Schema

	// Overlapping workload: (eating, dressing), (dressing, toileting),
	// (eating, toileting) — pairwise marginals sharing every 1-way margin.
	workload, err := repro.MarginalsOver(schema, [][]int{
		{0, 1}, {1, 2}, {0, 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(skipConsistency bool) *repro.Result {
		res, err := repro.Release(table, workload, repro.Options{
			Epsilon:         0.3,
			Strategy:        repro.StrategyWorkload,
			SkipConsistency: skipConsistency,
			Seed:            99,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	raw := run(true)
	consistent := run(false)

	fmt.Println("NLTCS-like release of three overlapping 2-way marginals (ε=0.3)")
	fmt.Println()
	fmt.Println("totals implied by each marginal (should all equal the row count):")
	fmt.Printf("  %-12s %-12s %-12s\n", "marginal", "raw", "consistent")
	for i, mt := range raw.Tables {
		fmt.Printf("  %-12v %-12.2f %-12.2f\n", mt.Attrs, sum(mt.Cells), sum(consistent.Tables[i].Cells))
	}

	fmt.Println("\nshared 1-way margin 'dressing' as implied by the two marginals containing it:")
	// marginal 0 = (eating, dressing): dressing is its second attribute →
	// aggregate cells over eating. marginal 1 = (dressing, toileting):
	// dressing is its first attribute.
	rawA := aggregate(raw.Tables[0].Cells, 1)        // over attr bit 0 of (0,1)
	rawB := aggregate(raw.Tables[1].Cells, 0)        // over attr bit 1 of (1,2)
	conA := aggregate(consistent.Tables[0].Cells, 1) //
	conB := aggregate(consistent.Tables[1].Cells, 0) //
	fmt.Printf("  raw:        from (eat,dress)=%v   from (dress,toilet)=%v   disagreement %.2f\n",
		short(rawA), short(rawB), disagreement(rawA, rawB))
	fmt.Printf("  consistent: from (eat,dress)=%v   from (dress,toilet)=%v   disagreement %.2f\n",
		short(conA), short(conB), disagreement(conA, conB))

	truth, err := repro.Release(table, workload, repro.Options{Epsilon: 1e12, SkipConsistency: true, Strategy: repro.StrategyWorkload})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nL1 error vs truth: raw %.1f, consistent %.1f (consistency never more than doubles it — Section 3.3)\n",
		l1(raw.Answers, truth.Answers), l1(consistent.Answers, truth.Answers))
}

// aggregate sums a 4-cell 2-way marginal down to the 2-cell margin of one
// of its two binary attributes (which = 0 for the low bit, 1 for the high).
func aggregate(cells []float64, which int) []float64 {
	out := make([]float64, 2)
	for c, v := range cells {
		out[(c>>uint(which))&1] += v
	}
	return out
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func disagreement(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

func short(v []float64) string {
	return fmt.Sprintf("[%.1f %.1f]", v[0], v[1])
}

func l1(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
