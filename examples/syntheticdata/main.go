// Syntheticdata: turn a private marginal release into row-level synthetic
// microdata (non-negative, integral — the concluding-remarks extension) and
// check how well the synthetic rows preserve the released statistics.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A clinical-style table: condition severity correlates with age band.
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "age-band", Cardinality: 4},
		{Name: "severity", Cardinality: 3},
		{Name: "insured", Cardinality: 2},
	})
	rows := make([][]int, 0, 8000)
	for i := 0; i < 8000; i++ {
		age := (i * 3 % 7) % 4
		sev := 0
		if age >= 2 && i%3 == 0 {
			sev = 1
		}
		if age == 3 && i%5 == 0 {
			sev = 2
		}
		insured := (i + age) % 2
		rows = append(rows, []int{age, sev, insured})
	}
	table := &repro.Table{Schema: schema, Rows: rows}

	workload := repro.AllKWayMarginals(schema, 2)
	release, err := repro.Release(table, workload, repro.Options{Epsilon: 0.7, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	synthetic, err := repro.SyntheticData(schema, workload, release, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true table: %d rows; synthetic table: %d rows\n\n", table.Count(), synthetic.Count())

	// Fidelity: compare each released marginal against the synthetic data's
	// marginal of the same attributes.
	exact := func(t *repro.Table) []float64 {
		res, err := repro.Release(t, workload, repro.Options{Epsilon: 1e12, SkipConsistency: true, Strategy: repro.StrategyWorkload})
		if err != nil {
			log.Fatal(err)
		}
		return res.Answers
	}
	truth := exact(table)
	synthAnswers := exact(synthetic)

	fmt.Printf("%-24s %14s %14s\n", "comparison", "L1 distance", "per released cell")
	relVsTruth := l1(release.Answers, truth)
	synthVsRelease := l1(synthAnswers, release.Answers)
	synthVsTruth := l1(synthAnswers, truth)
	n := float64(len(truth))
	fmt.Printf("%-24s %14.1f %14.2f\n", "release vs truth", relVsTruth, relVsTruth/n)
	fmt.Printf("%-24s %14.1f %14.2f\n", "synthetic vs release", synthVsRelease, synthVsRelease/n)
	fmt.Printf("%-24s %14.1f %14.2f\n", "synthetic vs truth", synthVsTruth, synthVsTruth/n)
	fmt.Println("\nThe synthetic rows cost no extra privacy (post-processing) and stay")
	fmt.Println("within rounding distance of the released marginals.")
}

func l1(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
