// Census: the paper's motivating scenario — release low-order marginals of
// a census-like table (the Adult schema of Section 5) and compare the
// strategies and budgeting rules at several privacy levels.
//
// Run with -full to use the paper-scale 23-bit Adult domain (needs ~1 GB
// and a couple of minutes); the default uses a reduced schema that shows
// the same orderings in seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	full := flag.Bool("full", false, "use the full 23-bit Adult schema")
	trials := flag.Int("trials", 3, "trials per configuration")
	flag.Parse()

	var table *repro.Table
	if *full {
		table = repro.SyntheticAdult(1, 32561)
	} else {
		// Reduced census: same flavour, 12-bit domain.
		schema := repro.MustSchema([]repro.Attribute{
			{Name: "workclass", Cardinality: 5},      // 3 bits
			{Name: "education", Cardinality: 8},      // 3 bits
			{Name: "marital-status", Cardinality: 4}, // 2 bits
			{Name: "race", Cardinality: 5},           // 3 bits
			{Name: "sex", Cardinality: 2},            // 1 bit
		})
		rows := make([][]int, 0, 20000)
		for i := 0; i < 20000; i++ {
			rows = append(rows, []int{
				i % 5, (i * 7 % 13) % 8, (i / 5) % 4, (i * 3 % 11) % 5, i % 2,
			})
		}
		table = &repro.Table{Schema: schema, Rows: rows}
	}

	workload := repro.AllKWayMarginals(table.Schema, 2)
	truth := exactAnswers(table, workload)

	fmt.Printf("census release: %d two-way marginals over %d-bit domain, %d tuples\n\n",
		len(workload.Marginals), table.Schema.Dim(), table.Count())
	fmt.Printf("%-10s %-9s %8s %8s %8s\n", "strategy", "budgets", "ε=0.25", "ε=0.5", "ε=1.0")

	type cfg struct {
		label   string
		kind    repro.StrategyKind
		uniform bool
	}
	for _, c := range []cfg{
		{"identity", repro.StrategyIdentity, true},
		{"workload", repro.StrategyWorkload, true},
		{"workload", repro.StrategyWorkload, false},
		{"fourier", repro.StrategyFourier, true},
		{"fourier", repro.StrategyFourier, false},
	} {
		b := "optimal"
		if c.uniform {
			b = "uniform"
		}
		fmt.Printf("%-10s %-9s", c.label, b)
		for _, eps := range []float64{0.25, 0.5, 1.0} {
			total := 0.0
			for tr := 0; tr < *trials; tr++ {
				res, err := repro.Release(table, workload, repro.Options{
					Epsilon:       eps,
					Strategy:      c.kind,
					UniformBudget: c.uniform,
					Seed:          int64(100*tr) + 7,
				})
				if err != nil {
					log.Fatal(err)
				}
				total += relativeError(truth, res.Answers)
			}
			fmt.Printf(" %8.4f", total/float64(*trials))
		}
		fmt.Println()
	}
	fmt.Println("\n(relative error: mean |noisy−true| per cell / mean true cell; lower is better)")
	fmt.Println("Expected shape per the paper: optimal budgets beat uniform for the same")
	fmt.Println("strategy, and the identity strategy is never competitive at this order.")
}

func exactAnswers(t *repro.Table, w *repro.Workload) []float64 {
	// Exact answers via a non-private release at enormous ε.
	res, err := repro.Release(t, w, repro.Options{Epsilon: 1e12, SkipConsistency: true, Strategy: repro.StrategyWorkload})
	if err != nil {
		log.Fatal(err)
	}
	return res.Answers
}

func relativeError(truth, noisy []float64) float64 {
	num, den := 0.0, 0.0
	for i := range truth {
		num += math.Abs(noisy[i] - truth[i])
		den += math.Abs(truth[i])
	}
	return num / den
}
