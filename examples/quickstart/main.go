// Quickstart: release all 1-way and one 2-way marginal of a small survey
// table under ε-differential privacy, using the library defaults (Fourier
// strategy, optimal non-uniform budgets, Fourier consistency) through the
// service API: one Releaser per (schema, workload), many releases, a
// cumulative budget cap.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A toy survey: 3 categorical attributes.
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "age-band", Cardinality: 4}, // 0:18-30 1:31-45 2:46-60 3:61+
		{Name: "smoker", Cardinality: 2},
		{Name: "exercise", Cardinality: 3}, // 0:rare 1:weekly 2:daily
	})
	rows := make([][]int, 0, 1000)
	for i := 0; i < 1000; i++ {
		age := i % 4
		smoker := 0
		if i%5 == 0 {
			smoker = 1
		}
		exercise := (i / 4) % 3
		if age == 3 {
			exercise = 0 // older cohort exercises less in this toy data
		}
		rows = append(rows, []int{age, smoker, exercise})
	}
	table := &repro.Table{Schema: schema, Rows: rows}

	// Workload: every 1-way marginal plus (age-band, exercise).
	workload, err := repro.MarginalsOver(schema, [][]int{
		{0}, {1}, {2}, {0, 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A Releaser plans once for the (schema, workload) pair and then serves
	// any number of releases; the attached budget cap refuses releases once
	// the total spend would pass ε = 1.
	releaser, err := repro.NewReleaser(schema, workload, repro.WithBudgetCap(1.0, 0))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	release, err := releaser.Release(ctx, table, repro.ReleaseSpec{
		Epsilon: 0.8,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("released %d marginals with total noise variance %.1f\n\n",
		len(release.Tables), release.TotalVariance)
	for _, mt := range release.Tables {
		names := make([]string, len(mt.Attrs))
		for i, a := range mt.Attrs {
			names[i] = schema.Attrs[a].Name
		}
		fmt.Printf("marginal over %v (per-cell σ≈%.1f):\n", names, math.Sqrt(mt.Variance))
		for c, v := range mt.Cells {
			fmt.Printf("  cell %02b: %8.1f\n", c, v)
		}
		fmt.Println()
	}

	// The released tables are mutually consistent: the noisy total count is
	// identical across all marginals.
	for _, mt := range release.Tables {
		total := 0.0
		for _, v := range mt.Cells {
			total += v
		}
		fmt.Printf("total from marginal %v: %.4f\n", mt.Attrs, total)
	}

	// Only ε = 0.2 of the cap remains, so a second ε = 0.8 release is
	// refused before it touches the data.
	if _, err := releaser.Release(ctx, table, repro.ReleaseSpec{Epsilon: 0.8, Seed: 43}); errors.Is(err, repro.ErrBudgetExhausted) {
		eps, _ := releaser.Ledger().Spent()
		fmt.Printf("\nsecond release refused: budget cap enforced (spent ε=%.1f of 1.0)\n", eps)
	}
}
