// Example server: the multi-tenant upload-once / release-many serving
// flow, in process. A dataset is ingested exactly once as streaming
// NDJSON; after that, two tenants — each authenticating with its own API
// key — release against it, each spending its own budget ledger under a
// still-binding global cap. The programmatic equivalent of
//
//	printf 'alice 0.75\nbob\n' > keys.txt
//	dpcubed -addr :8080 -epsilon-cap 2 -delta-cap 1e-6 -api-keys keys.txt -composition zcdp &
//	dpcube -ingest people.csv -server http://localhost:8080 -dataset people
//	curl -s -X POST -H 'X-API-Key: alice' localhost:8080/v1/release \
//	    -d '{"dataset_id":"people","workload":{"k":1},"epsilon":0.25,"seed":1}'
//	curl -s -H 'X-API-Key: alice' localhost:8080/v1/budget
//
// Repeating the exact same POST replays the identical bytes from the
// result cache without spending any further budget (free post-processing
// of the already-released output); to load-test the serving path at a
// target request rate — mixed release/cube/synthetic traffic with a
// configurable hot-repeat ratio over both tenants' keys — drive a live
// daemon with cmd/dpload:
//
//	dpload -server http://localhost:8080 -keys alice,bob \
//	    -rps 200 -duration 10s -hot 0.8 -out BENCH_dpload.json
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/server"
)

func main() {
	// One server = one dataset store + one plan cache + one budget-ledger
	// registry (a ledger per API key, plus the global ε=2 cap binding
	// across both tenants). zCDP accounting composes the small Gaussian
	// releases below far tighter than plain (ε, δ) summation would.
	srv, err := server.New(server.Config{
		EpsilonCap:  2,
		DeltaCap:    1e-6,
		Composition: "zcdp",
		APIKeys: []server.KeyConfig{
			{Key: "alice", EpsilonCap: 0.75, DeltaCap: 1e-6},
			{Key: "bob"}, // inherits the global caps
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv) // any http.Server works; httptest picks a free port
	defer ts.Close()

	// Upload once: the body streams as NDJSON — a schema header line, then
	// one JSON array per tuple. The daemon aggregates on the fly and never
	// buffers the rows; ingestion is free (no privacy spent), but like
	// every request it must authenticate.
	var nd strings.Builder
	nd.WriteString(`{"schema":[{"name":"age-band","cardinality":8},{"name":"smoker","cardinality":2}]}` + "\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&nd, "[%d,%d]\n", i%8, (i/3)%2)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/people", strings.NewReader(nd.String()))
	req.Header.Set("X-API-Key", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	show("PUT /v1/datasets/people (alice)", resp)

	// Release many: each tenant spends its own ledger over the stored
	// aggregate — no rows in any body. The same seed would reproduce a
	// rows-in-body release bit for bit.
	for _, call := range []struct{ key, body string }{
		{"alice", `{"dataset_id":"people","workload":{"k":1},"epsilon":0.25,"delta":1e-9,"seed":1}`},
		{"bob", `{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"delta":1e-9,"seed":2}`},
	} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/release", strings.NewReader(call.body))
		req.Header.Set("X-API-Key", call.key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		show("POST /v1/release ("+call.key+")", resp)
	}

	// Each tenant sees its own spend plus the global view; the metrics
	// endpoint breaks spend out per key next to cache and store counters.
	// Note the zCDP budget: both releases together report composed spend
	// at δ=1e-6, well under their summed ε.
	for _, path := range []string{"/v1/budget", "/v1/metrics"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("X-API-Key", "alice")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		show("GET "+path+" (alice)", resp)
	}

	// A missing or unknown key is a 401: tenancy is not optional once
	// keys are configured.
	resp, err = http.Get(ts.URL + "/v1/budget")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /v1/budget (no key)", resp)

	clusterMode(nd.String())
}

// clusterMode is the distributed release fabric, in process: two shard
// workers plus a coordinator splitting each release's Measure and Recover
// stages across them. The programmatic equivalent of
//
//	dpcubed -addr :8081 -worker -fabric-api-key fleet-secret &
//	dpcubed -addr :8082 -worker -fabric-api-key fleet-secret &
//	dpcubed -addr :8080 -fabric-api-key fleet-secret \
//	    -fabric-workers http://localhost:8081,http://localhost:8082
//
// Every process holds its own copy of the dataset; the coordinator's
// content-fingerprint handshake refuses a worker whose copy diverged. The
// fleet secret (never a tenant key) authenticates each task post. The
// released bits are identical to a single process at any fleet size —
// worker failures and stragglers are retried, hedged, or re-executed
// locally, costing latency but never a bit.
func clusterMode(ndjson string) {
	ingest := func(url string) {
		req, _ := http.NewRequest(http.MethodPut, url+"/v1/datasets/people", strings.NewReader(ndjson))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}

	var workerURLs []string
	for i := 0; i < 2; i++ {
		wsrv, err := server.New(server.Config{
			EpsilonCap:   10,
			DeltaCap:     1e-6,
			FabricWorker: true,
			FabricAPIKey: "fleet-secret",
		})
		if err != nil {
			log.Fatal(err)
		}
		wts := httptest.NewServer(wsrv)
		defer wts.Close()
		ingest(wts.URL)
		workerURLs = append(workerURLs, wts.URL)
	}

	coord, err := server.New(server.Config{
		EpsilonCap:    10,
		DeltaCap:      1e-6,
		FabricWorkers: workerURLs,
		FabricAPIKey:  "fleet-secret",
	})
	if err != nil {
		log.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	defer cts.Close()
	ingest(cts.URL)

	// The release request is byte-for-byte the single-process request: the
	// fleet is server configuration, invisible on the wire and in the bits.
	resp, err := http.Post(cts.URL+"/v1/release", "application/json",
		strings.NewReader(`{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":42}`))
	if err != nil {
		log.Fatal(err)
	}
	show("POST /v1/release (2-worker fabric)", resp)

	// The metrics' fabric section shows where the shards ran: per-worker
	// task counts, retries, hedges and straggler re-executions.
	resp, err = http.Get(cts.URL + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	show("GET /v1/metrics (fabric section)", resp)
}

func show(what string, resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s → %s\n%s\n", what, resp.Status, body)
}
