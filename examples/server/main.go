// Example server: the upload-once / release-many serving flow, in process.
// A dataset is ingested exactly once as streaming NDJSON; every release
// after that references it by id, so request bodies stop carrying the
// relation. The programmatic equivalent of
//
//	dpcubed -addr :8080 -epsilon-cap 2 &
//	dpcube -ingest people.csv -server http://localhost:8080 -dataset people
//	curl -s -X POST localhost:8080/v1/release \
//	    -d '{"dataset_id":"people","workload":{"k":1},"epsilon":0.25,"seed":1}'
//	curl -s localhost:8080/v1/budget
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/server"
)

func main() {
	// One server = one dataset store + one plan cache + one budget ledger.
	// Every request below shares all three.
	srv, err := server.New(server.Config{EpsilonCap: 2, DeltaCap: 0})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv) // any http.Server works; httptest picks a free port
	defer ts.Close()

	// Upload once: the body streams as NDJSON — a schema header line, then
	// one JSON array per tuple. The daemon aggregates on the fly and never
	// buffers the rows; ingestion is free (no privacy spent).
	var nd strings.Builder
	nd.WriteString(`{"schema":[{"name":"age-band","cardinality":8},{"name":"smoker","cardinality":2}]}` + "\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&nd, "[%d,%d]\n", i%8, (i/3)%2)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/people", strings.NewReader(nd.String()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	show("PUT /v1/datasets/people", resp)

	// Release many: two different workloads and budgets over the stored
	// aggregate — no rows in either body. The same seed would reproduce a
	// rows-in-body release bit for bit.
	for _, body := range []string{
		`{"dataset_id":"people","workload":{"k":1},"epsilon":0.25,"seed":1}`,
		`{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":2}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/release", "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		show("POST /v1/release", resp)
	}

	// The ledger saw both releases (0.75 of the 2.0 cap); the metrics
	// endpoint shows the same plus cache and store counters.
	for _, path := range []string{"/v1/budget", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		show("GET "+path, resp)
	}
}

func show(what string, resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%s → %s\n%s\n", what, resp.Status, body)
}
