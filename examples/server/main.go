// Example server: start the dpcubed serving layer in-process, post a
// release request and read the budget — the programmatic equivalent of
//
//	dpcubed -addr :8080 -epsilon-cap 2 &
//	curl -s -X POST localhost:8080/v1/release -d @request.json
//	curl -s localhost:8080/v1/budget
//
// Run with: go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/server"
)

func main() {
	// One server = one plan cache + one budget ledger. Every request below
	// shares both.
	srv, err := server.New(server.Config{EpsilonCap: 2, DeltaCap: 0})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv) // any http.Server works; httptest picks a free port
	defer ts.Close()

	request := map[string]any{
		"schema": []map[string]any{
			{"name": "age-band", "cardinality": 8},
			{"name": "smoker", "cardinality": 2},
		},
		"rows": [][]int{
			{0, 1}, {1, 0}, {2, 0}, {3, 1}, {4, 0}, {5, 0}, {6, 1}, {7, 0},
			{0, 0}, {1, 1}, {2, 0}, {3, 0}, {4, 1}, {5, 0}, {6, 0}, {7, 1},
		},
		"workload": map[string]any{"k": 1},
		"epsilon":  0.5,
		"seed":     1,
	}
	body, _ := json.Marshal(request)

	resp, err := http.Post(ts.URL+"/v1/release", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	released, _ := io.ReadAll(resp.Body)
	fmt.Printf("POST /v1/release → %s\n%s\n", resp.Status, released)

	budget, err := http.Get(ts.URL + "/v1/budget")
	if err != nil {
		log.Fatal(err)
	}
	defer budget.Body.Close()
	spend, _ := io.ReadAll(budget.Body)
	fmt.Printf("GET /v1/budget → %s\n%s", budget.Status, spend)
}
