// Rangequeries: the framework beyond marginals — answer 1-D range queries
// over an ordered domain (e.g. a salary histogram) through the hierarchical
// strategy of Hay et al. and the Haar wavelet strategy of Xiao et al., both
// with the paper's optimal non-uniform level budgets, against the flat
// Laplace baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/noise"
	"repro/internal/rangequery"
)

func main() {
	const n = 4096 // salary buckets
	rng := rand.New(rand.NewSource(3))
	hist := make([]float64, n)
	for i := range hist {
		// Log-normal-ish salary histogram.
		mode := 700.0
		hist[i] = 2000 * math.Exp(-math.Pow(math.Log(float64(i+1)/mode), 2)) * (0.8 + 0.4*rng.Float64())
	}

	// Workload: 200 random analyst ranges plus some long prefixes.
	var ivs []rangequery.Interval
	for i := 0; i < 200; i++ {
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		ivs = append(ivs, rangequery.Interval{Lo: lo, Hi: hi})
	}
	for i := 0; i < 50; i++ {
		ivs = append(ivs, rangequery.Interval{Lo: 0, Hi: n - i*8})
	}
	w, err := rangequery.NewWorkload(n, ivs)
	if err != nil {
		log.Fatal(err)
	}
	truth := w.Eval(hist)
	p := noise.Params{Type: noise.PureDP, Epsilon: 0.5, Neighbor: noise.AddRemove}

	fmt.Printf("%d range queries over a %d-bucket histogram at ε=%.1f\n\n", len(ivs), n, p.Epsilon)
	fmt.Printf("%-12s %-9s %14s %14s\n", "strategy", "budgets", "mean |error|", "total variance")
	for _, m := range []rangequery.Method{rangequery.Flat, rangequery.Hierarchy, rangequery.Wavelet} {
		for _, budgets := range []string{"uniform", "optimal"} {
			if m == rangequery.Flat && budgets == "optimal" {
				continue // single group: optimal = uniform
			}
			rel, err := rangequery.Run(w, hist, m, budgets, p, 11)
			if err != nil {
				log.Fatal(err)
			}
			mae := 0.0
			for i := range truth {
				mae += math.Abs(rel.Answers[i] - truth[i])
			}
			mae /= float64(len(truth))
			fmt.Printf("%-12v %-9s %14.1f %14.3g\n", m, budgets, mae, rel.TotalVariance)
		}
	}
	fmt.Println("\nExpected shape: hierarchy and wavelet beat flat on long ranges, and")
	fmt.Println("optimal per-level budgets improve each of them (Section 3.1 applied")
	fmt.Println("to the [14]/[23] strategies — the generalisation the paper claims).")
}
