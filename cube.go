package repro

import (
	"context"

	"repro/internal/datacube"
	"repro/internal/synth"
)

// CubeRelease is a private datacube: noisy, mutually consistent cuboids
// navigable with the OLAP operations Cuboid, RollUp, Slice and Dice.
type CubeRelease = datacube.Released

// CubeLattice is the cuboid lattice of a released datacube.
type CubeLattice = datacube.Lattice

// ReleaseCube privately materialises every cuboid (marginal) of the table
// with at most maxOrder attributes. The released cuboids are mutually
// consistent: rolling a child cuboid up always reproduces its released
// ancestor exactly, so the cube behaves like a real OLAP cube downstream.
func ReleaseCube(t *Table, maxOrder int, o Options) (*CubeRelease, error) {
	return ReleaseCubeContext(context.Background(), t, maxOrder, o)
}

// ReleaseCubeContext is ReleaseCube under a context: cancellation aborts
// the release engine mid-run (see Releaser.Release for the service-oriented
// marginal API; cube releases share its engine and plan cache plumbing).
func ReleaseCubeContext(ctx context.Context, t *Table, maxOrder int, o Options) (*CubeRelease, error) {
	if err := validatePrivacy(o.Epsilon, o.Delta); err != nil {
		return nil, err
	}
	return datacube.ReleaseContext(ctx, t, maxOrder, o.cubeOptions())
}

// ReleaseCubeVectorContext is ReleaseCubeContext for callers who already
// hold the aggregated contingency vector — the upload-once path used by the
// dataset store, where the relation was vectorised at ingestion and every
// cube release skips straight to the mechanism. Bit-identical to the table
// path over the same data and seed.
func ReleaseCubeVectorContext(ctx context.Context, schema *Schema, counts []float64, maxOrder int, o Options) (*CubeRelease, error) {
	if err := validatePrivacy(o.Epsilon, o.Delta); err != nil {
		return nil, err
	}
	return datacube.ReleaseVectorContext(ctx, schema, counts, maxOrder, o.cubeOptions())
}

// ReleaseCubeBlockedContext is ReleaseCubeVectorContext for a sharded
// contingency vector (a dataset-store aggregate): the cube runs without the
// vector ever being gathered into one dense slice, bit-identical to the
// dense path over the same cells.
func ReleaseCubeBlockedContext(ctx context.Context, schema *Schema, counts *BlockedVector, maxOrder int, o Options) (*CubeRelease, error) {
	if err := validatePrivacy(o.Epsilon, o.Delta); err != nil {
		return nil, err
	}
	return datacube.ReleaseBlockedContext(ctx, schema, counts, maxOrder, o.cubeOptions())
}

// cubeOptions maps the flat Options onto the datacube layer's options.
func (o Options) cubeOptions() datacube.Options {
	return datacube.Options{
		Epsilon:       o.Epsilon,
		Delta:         o.Delta,
		UniformBudget: o.UniformBudget,
		Seed:          o.Seed,
		Strategy:      o.Strategy.impl(),
		Workers:       o.Workers,
		Shards:        o.Shards,
		Cache:         o.Cache,
	}
}

// SyntheticData converts a consistent release into row-level synthetic
// microdata: the release's Fourier coefficients are materialised as an
// estimated contingency vector, clamped and rounded to non-negative integer
// counts (the post-processing of the paper's concluding remarks), and
// sampled back into tuples under the schema. Post-processing adds no
// privacy cost.
//
// The release must have been produced with consistency enabled (the
// default); SkipConsistency releases carry no coefficients to materialise.
func SyntheticData(s *Schema, w *Workload, res *Result, seed int64) (*Table, error) {
	rel, err := ReleaseVectorCoefficients(s, w, res)
	if err != nil {
		return nil, err
	}
	counts := synth.RoundToCounts(rel)
	tab, _ := synth.SampleTuples(s, counts, seed)
	return tab, nil
}

// ReleaseVectorCoefficients reconstructs the estimated contingency vector
// from a released workload by re-running the (deterministic) consistency
// projection on the released answers and inverting the Fourier transform.
func ReleaseVectorCoefficients(s *Schema, w *Workload, res *Result) ([]float64, error) {
	coeffRes, err := consistencyOf(w, res)
	if err != nil {
		return nil, err
	}
	return synth.MaterializeVector(s.Dim(), coeffRes)
}
