// Command experiments regenerates the tables and figures of the paper's
// evaluation as CSV on stdout (or into -outdir).
//
// Usage:
//
//	experiments -fig fig4            # Adult accuracy sweep (Figure 4)
//	experiments -fig fig5            # NLTCS accuracy sweep (Figure 5)
//	experiments -fig fig6            # NLTCS running-time sweep (Figure 6)
//	experiments -fig table1          # error-bound table (Table 1)
//	experiments -fig intro           # Section 1 worked example
//	experiments -fig all             # everything
//
// Flags -trials, -cluster, -scale and -workloads trade fidelity for time;
// the defaults finish in minutes on a laptop. EXPERIMENTS.md records a full
// run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/noise"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "which artefact to regenerate: fig4|fig5|fig6|table1|intro|all")
		trials    = flag.Int("trials", 3, "trials per (method, ε) point")
		seed      = flag.Int64("seed", 20130408, "base random seed (ICDE'13 started April 8)")
		cluster   = flag.Bool("cluster", true, "include the (slow) clustering strategies C and C+")
		scale     = flag.Int("scale", 0, "override tuple count for the synthetic datasets (0 = paper sizes)")
		outdir    = flag.String("outdir", "", "write one CSV per artefact into this directory instead of stdout")
		workloads = flag.String("workloads", "", "comma-separated workload subset (e.g. Q1,Q2*); empty = all six")
		epsilons  = flag.String("epsilons", "", "comma-separated ε grid; empty = 0.1..1.0")
		delta     = flag.Float64("delta", 0, "run the accuracy sweeps under (ε,δ)-DP with this δ (0 = pure ε-DP)")
	)
	flag.Parse()

	// Ctrl-C aborts the in-flight sweep instead of leaving worker
	// goroutines burning CPU until process exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func(name string, fn func(io.Writer) error) {
		var w io.Writer = os.Stdout
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*outdir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		} else {
			fmt.Printf("## %s\n", name)
		}
		if err := fn(w); err != nil {
			fatal(err)
		}
	}

	eps := experiments.DefaultEpsilons()
	if *epsilons != "" {
		eps = eps[:0]
		for _, tok := range strings.Split(*epsilons, ",") {
			var e float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &e); err != nil {
				fatal(fmt.Errorf("bad epsilon %q: %w", tok, err))
			}
			eps = append(eps, e)
		}
	}

	wantWorkload := func(name string) bool {
		if *workloads == "" {
			return true
		}
		for _, tok := range strings.Split(*workloads, ",") {
			if strings.TrimSpace(tok) == name {
				return true
			}
		}
		return false
	}

	base := noise.Params{Type: noise.PureDP, Neighbor: noise.AddRemove}
	if *delta > 0 {
		base.Type, base.Delta = noise.ApproxDP, *delta
	}
	accuracy := func(datasetName string, tab *dataset.Table) func(io.Writer) error {
		return func(out io.Writer) error {
			x, err := tab.Vector()
			if err != nil {
				return err
			}
			ws := experiments.SchemaWorkloads(tab.Schema)
			var all []experiments.Point
			for _, name := range ws.Names {
				if !wantWorkload(name) {
					continue
				}
				fmt.Fprintf(os.Stderr, "[%s] workload %s (%d marginals)\n", datasetName, name, len(ws.ByName[name].Marginals))
				pts, err := experiments.AccuracySweepParams(ctx, datasetName, name, ws.ByName[name], x,
					experiments.Methods(*cluster), base, eps, *trials, *seed)
				if err != nil {
					return err
				}
				all = append(all, pts...)
			}
			return experiments.WritePointsCSV(out, all)
		}
	}

	adultTuples, nltcsTuples := dataset.AdultTupleCount, dataset.NLTCSTupleCount
	if *scale > 0 {
		adultTuples, nltcsTuples = *scale, *scale
	}

	figs := strings.Split(*fig, ",")
	want := func(name string) bool {
		for _, f := range figs {
			if f == "all" || f == name {
				return true
			}
		}
		return false
	}

	if want("fig4") {
		run("fig4_adult_accuracy", accuracy("adult", dataset.SyntheticAdult(*seed, adultTuples)))
	}
	if want("fig5") {
		run("fig5_nltcs_accuracy", accuracy("nltcs", dataset.SyntheticNLTCS(*seed, nltcsTuples)))
	}
	if want("fig6") {
		run("fig6_nltcs_time", func(out io.Writer) error {
			tab := dataset.SyntheticNLTCS(*seed, nltcsTuples)
			x, err := tab.Vector()
			if err != nil {
				return err
			}
			ws := experiments.SchemaWorkloads(tab.Schema)
			times, err := experiments.TimingSweep(ctx, "nltcs", ws, x, experiments.Methods(*cluster), *seed)
			if err != nil {
				return err
			}
			return experiments.WriteTimesCSV(out, times)
		})
	}
	if want("table1") {
		run("table1_bounds", func(out io.Writer) error {
			p := noise.Params{Type: noise.PureDP, Epsilon: 1, Neighbor: noise.AddRemove}
			rows, err := experiments.Table1Rows(ctx, []int{8, 10, 12, 14}, []int{1, 2, 3}, p, *trials, *seed)
			if err != nil {
				return err
			}
			return experiments.WriteBoundsCSV(out, rows)
		})
	}
	if want("intro") {
		run("intro_worked_example", func(out io.Writer) error {
			uniform, nonUniform, gls, err := experiments.IntroExample()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "stage,total_variance_times_eps_squared")
			fmt.Fprintf(out, "uniform,%.4f\n", uniform)
			fmt.Fprintf(out, "non_uniform_fixed_recovery,%.4f\n", nonUniform)
			fmt.Fprintf(out, "non_uniform_gls_recovery,%.4f\n", gls)
			fmt.Fprintf(out, "paper_reference,48 -> 46.17 -> 34.6\n")
			return nil
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
