// Command dpvet is the repository's domain lint gate: a multichecker over
// the five static-invariant analyzers in internal/analysis (detmap,
// seedflow, keyleak, ctxflow, errsink). CI runs `dpvet ./...` and fails
// the build on any unsuppressed finding; scripts/lint.sh wraps it for
// local use.
//
// Usage:
//
//	dpvet [-json report.json] [-show-suppressed] [-list] [packages]
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. The -json
// report is written even when there are no findings, so CI can upload it
// unconditionally as the audit artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonPath := fs.String("json", "", "write the full findings report (including suppressions) to this file")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed findings")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dpvet:", err)
		return 2
	}
	rep, err := analysis.Vet(wd, analysis.All(), patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "dpvet:", err)
		return 2
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep); err != nil {
			fmt.Fprintln(stderr, "dpvet:", err)
			return 2
		}
	}
	active := rep.Active()
	for _, f := range active {
		fmt.Fprintln(stdout, relativize(wd, f))
	}
	if *showSuppressed {
		for _, f := range rep.Suppressed() {
			fmt.Fprintf(stdout, "%s [suppressed: %s]\n", relativize(wd, f), f.SuppressReason)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "dpvet: %d finding(s)\n", len(active))
		return 1
	}
	return 0
}

func relativize(wd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(wd, f.File); err == nil && !filepath.IsAbs(rel) {
		f.File = rel
	}
	return f.String()
}

func writeReport(path string, rep *analysis.Report) error {
	if rep.Findings == nil {
		rep.Findings = []analysis.Finding{} // empty report stays valid JSON
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
