package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// capture runs the CLI with stdout/stderr tee'd to temp files.
func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, read(outF), read(errF)
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out)
		}
	}
}

// TestFindingsGateExit builds a scratch module with one ctxflow violation
// and checks the full CLI path: findings print, the JSON report lands,
// and the exit code gates.
func TestFindingsGateExit(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `package scratch

import "context"

// Detach drops the caller's cancellation.
func Detach(ctx context.Context) context.Context {
	return context.Background()
}
`)
	t.Chdir(dir)
	report := filepath.Join(dir, "report.json")
	code, out, stderr := capture(t, "-json", report, "./...")
	if code != 1 {
		t.Fatalf("exit %d (stderr %q), want 1 for an active finding", code, stderr)
	}
	if !strings.Contains(out, "ctxflow") || !strings.Contains(out, "scratch.go:7") {
		t.Errorf("finding not printed with relative position:\n%s", out)
	}
	var rep analysis.Report
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Active()) != 1 || rep.Active()[0].Analyzer != "ctxflow" {
		t.Errorf("report = %+v, want one ctxflow finding", rep.Findings)
	}
}

// TestCleanModuleWritesEmptyReport: the report is the CI audit artifact,
// so it must exist (and be valid JSON) even when there is nothing to say.
func TestCleanModuleWritesEmptyReport(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), "package scratch\n\n// V is inert.\nvar V = 1\n")
	t.Chdir(dir)
	report := filepath.Join(dir, "report.json")
	code, _, stderr := capture(t, "-json", report, "./...")
	if code != 0 {
		t.Fatalf("exit %d (stderr %q), want 0", code, stderr)
	}
	var rep analysis.Report
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("clean module produced findings: %+v", rep.Findings)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
