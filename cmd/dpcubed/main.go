// Command dpcubed serves differentially private marginal, datacube and
// synthetic-data releases over JSON/HTTP — the long-lived deployment shape
// of the paper's mechanisms, where the expensive strategy planning is done
// once per (schema, workload) and amortised across requests through a
// shared plan cache, while budget ledgers enforce per-tenant and global
// (ε, δ) caps across everything the process ever releases.
//
// Endpoints (see internal/server):
//
//	PUT    /v1/datasets/{id} — ingest a dataset once (streaming NDJSON)
//	GET    /v1/datasets      — list resident datasets
//	DELETE /v1/datasets/{id} — remove a dataset
//	POST   /v1/release       — private marginals (rows, counts or dataset_id)
//	POST   /v1/cube          — private datacube up to max_order
//	POST   /v1/synthetic     — release + row-level synthetic microdata
//	GET    /v1/budget        — cumulative privacy spend vs. the cap
//	GET    /v1/metrics       — request/error counters, spend, cache, store
//	GET    /v1/healthz       — liveness (unauthenticated)
//	GET    /v1/readyz        — readiness (unauthenticated; 503 while draining)
//
// Usage:
//
//	dpcubed -addr :8080 -epsilon-cap 10 -store-dir /var/lib/dpcubed
//	dpcube -ingest people.csv -server http://localhost:8080 -dataset people
//	curl -s -X POST localhost:8080/v1/release \
//	    -d '{"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":1}'
//	curl -s localhost:8080/v1/budget
//
// Multi-tenant serving: -api-keys names a file of "key [ε-cap [δ-cap]]"
// lines (or set DPCUBED_API_KEYS to comma-separated key[:ε[:δ]] entries);
// every request must then present its key via X-API-Key or a Bearer
// token, and spends against that key's own ledger while the global cap
// still binds across all keys. -composition zcdp switches the ledgers to
// Rényi/zCDP accounting (-target-delta sets the reporting δ, default the
// δ cap), under which long sequences of small Gaussian releases compose
// far tighter than plain summation.
//
// With -store-dir, ingested datasets are persisted as snapshots (schema +
// aggregated counts, never raw rows) and reloaded on restart, so the
// daemon answers releases for previously ingested datasets without
// re-upload; warm cluster plans and the ledgers' charge histories are
// persisted on graceful shutdown (and every -plan-flush interval), so
// neither planning work nor privacy spend is lost across restarts.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get -drain to finish, new connections are refused, and the final budget
// ledgers (global and per key) are printed to stderr so the spend
// survives in the logs. /v1/readyz answers 503 during the drain so load
// balancers stop routing first; plans and ledgers are snapshotted only
// after the last in-flight release handler has returned.
//
// # Cluster mode
//
// A fleet splits one release's Measure and Recover stages across
// processes (see internal/fabric). Start shard workers with -worker and
// point a coordinator at them:
//
//	dpcubed -addr :8081 -worker -fabric-api-key fleet-secret &
//	dpcubed -addr :8082 -worker -fabric-api-key fleet-secret &
//	dpcubed -addr :8080 -fabric-api-key fleet-secret \
//	    -fabric-workers http://localhost:8081,http://localhost:8082
//
// Every process needs its own copy of each dataset (ingest to all of
// them; a shared -store-dir snapshot tree also works when processes share
// a filesystem). -fabric-api-key is the fleet secret: coordinators present
// it on every task, and a -worker requires it on its task endpoint. It
// must be distinct from every tenant API key — tenant keys never
// authenticate fabric tasks, and a worker with -api-keys refuses to start
// without a fabric key. The coordinator hands a worker a task only if the
// worker's copy matches the coordinator's content fingerprint, so a stale
// replica is refused rather than silently merged. Releases are
// bit-identical to single-process at any fleet size — worker crashes,
// stragglers (re-executed locally after -fabric-hedge) and timeouts
// (-fabric-timeout, -fabric-retries) cost latency, never correctness.
// Only dataset_id-backed /v1/release and /v1/synthetic requests
// distribute; /v1/metrics reports per-worker task counts, retries, hedges
// and straggler re-executions under "fabric".
//
// Profiling: -pprof-addr (e.g. -pprof-addr localhost:6060) serves
// net/http/pprof on a SEPARATE admin listener — never on the public -addr,
// so exposing the API does not expose heap and CPU profiles. It is off by
// default; bind it to localhost or an internal interface only. Profiles
// reveal operational detail (allocation sites, goroutine stacks), not
// released data, but they are still nobody's business. The same admin
// listener serves Prometheus metrics at /metrics (identical to
// GET /v1/metrics?format=prometheus on the public address, but
// unauthenticated and off the tenant-facing surface).
//
//	dpcubed -addr :8080 -pprof-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/heap
//	curl -s localhost:6060/metrics | head
//
// # Observability
//
// -log-level (debug|info|warn|error) and -log-format (json|text) select
// the structured log/slog output on stderr: one record per request with
// method, path, status, duration and request_id (inbound X-Request-Id is
// honored, otherwise one is generated and echoed on the response), plus
// one record per fabric task on workers carrying the coordinator's
// request ID, so a release's logs correlate across the fleet. API keys
// appear in logs only as short fingerprints, never verbatim. See
// internal/server and internal/telemetry for the metric families.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // admin-listener profiles, gated by -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		epsCap     = flag.Float64("epsilon-cap", 10, "total privacy budget ε the process may ever spend")
		deltaCap   = flag.Float64("delta-cap", 1e-3, "total δ the process may ever spend (0 admits only pure-DP requests)")
		maxWorkers = flag.Int("max-workers", 0, "per-request engine worker bound (0 = all CPUs)")
		maxShards  = flag.Int("max-shards", 0, "per-request measure-stage shard bound (0 = engine auto-sharding)")
		cacheSize  = flag.Int("cache-size", 0, "shared plan cache entries (0 = default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		storeDir   = flag.String("store-dir", "", "dataset snapshot directory; empty keeps datasets in memory only")
		planFlush  = flag.Duration("plan-flush", 0, "periodic plan+ledger snapshot flush interval (0 = only on graceful shutdown); needs -store-dir")
		maxData    = flag.Int("max-datasets", 0, "resident dataset bound (0 = unlimited; past it the LRU unpinned dataset is evicted)")
		apiKeys    = flag.String("api-keys", "", "API key file: one 'key [epsilon-cap [delta-cap]]' per line; empty falls back to $DPCUBED_API_KEYS, and with neither the server runs single-tenant and unauthenticated")
		compMode   = flag.String("composition", "basic", "budget accounting: basic ((ε,δ) summation) or zcdp (Rényi/zCDP, tight composition of many small releases)")
		targetDel  = flag.Float64("target-delta", 0, "δ at which zcdp accounting reports composed ε (0 = the delta cap)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof and /metrics on this separate admin address (empty = disabled); bind to localhost or an internal interface")
		logLevel   = flag.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
		logFormat  = flag.String("log-format", "json", "structured-log encoding on stderr: json or text")

		worker     = flag.Bool("worker", false, "serve POST /v1/fabric/task: act as a shard worker for a fabric coordinator")
		fabWorkers = flag.String("fabric-workers", "", "comma-separated worker base URLs (e.g. http://10.0.0.2:8080,...); non-empty makes this process a fabric coordinator")
		fabKey     = flag.String("fabric-api-key", "", "fleet secret: presented to fabric workers on every task (X-API-Key) and required by -worker on its task endpoint; must differ from every tenant API key")
		fabTimeout = flag.Duration("fabric-timeout", 0, "per fabric task attempt timeout (0 = 30s)")
		fabRetries = flag.Int("fabric-retries", 0, "additional remote attempts per failed fabric task (0 = default 1, negative disables)")
		fabHedge   = flag.Duration("fabric-hedge", 0, "re-execute a straggling fabric task locally after this long (0 = half the task timeout, negative disables)")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpcubed:", err)
		os.Exit(2)
	}

	keys, err := loadKeys(*apiKeys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpcubed:", err)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		EpsilonCap:        *epsCap,
		DeltaCap:          *deltaCap,
		MaxWorkers:        *maxWorkers,
		MaxShards:         *maxShards,
		CacheSize:         *cacheSize,
		StoreDir:          *storeDir,
		MaxDatasets:       *maxData,
		APIKeys:           keys,
		Composition:       *compMode,
		TargetDelta:       *targetDel,
		FabricWorkers:     splitList(*fabWorkers),
		FabricAPIKey:      *fabKey,
		FabricTaskTimeout: *fabTimeout,
		FabricRetries:     *fabRetries,
		FabricHedgeAfter:  *fabHedge,
		FabricWorker:      *worker,
		Logger:            logger,
		Metrics:           telemetry.Default(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpcubed:", err)
		os.Exit(2)
	}

	// The pprof handlers live on http.DefaultServeMux (blank import above);
	// the public listener below uses the server's own mux, so profiles —
	// and the unauthenticated /metrics scrape mounted here — are reachable
	// only through this opt-in admin address.
	if *pprofAddr != "" {
		http.Handle("/metrics", srv.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("admin listener failed", "addr", *pprofAddr, "error", err.Error())
			}
		}()
		logger.Info("admin listener serving pprof and /metrics", "addr", *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// BaseContext is the default (request contexts cancel on client
		// disconnect), which is what threads cancellation into the engine.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic snapshot flush: without it, plans planned — and budget
	// charged — since startup persist only on graceful shutdown, so a
	// crash loses the warm cache and up to one interval of recorded spend.
	if *planFlush > 0 && *storeDir != "" {
		go func() {
			tick := time.NewTicker(*planFlush)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := srv.FlushPlans(); err != nil {
						fmt.Fprintln(os.Stderr, "dpcubed: plan flush:", err)
					} else if n > 0 {
						fmt.Fprintf(os.Stderr, "dpcubed: flushed %d warm plan(s)\n", n)
					}
					if _, err := srv.FlushLedgers(); err != nil {
						fmt.Fprintln(os.Stderr, "dpcubed: ledger flush:", err)
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "epsilon_cap", *epsCap, "delta_cap", *deltaCap, "composition", *compMode)
		if len(keys) > 0 {
			logger.Info("API keys configured; requests must authenticate", "keys", len(keys))
		}
		if *worker {
			logger.Info("fabric worker mode: serving POST /v1/fabric/task")
		}
		if f := srv.Fabric(); f != nil {
			logger.Info("fabric coordinator", "workers", f.Workers())
		}
		if st := srv.Store().Stats(); st.Datasets > 0 {
			logger.Info("recovered datasets from store", "datasets", st.Datasets, "cells", st.TotalCells, "store_dir", *storeDir)
		}
		for _, q := range srv.Store().QuarantinedSnapshots() {
			logger.Warn("quarantined snapshot", "path", q)
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dpcubed: drain:", err)
		}
		// Shutdown returning (even in error) does not mean handlers have:
		// a release can still be mid-charge on a hijacked or timed-out
		// connection. Drain waits for every in-flight handler so the
		// snapshots below include their ledger charges and warm plans.
		if err := srv.Drain(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dpcubed: drain:", err)
		}
		cancel()
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dpcubed:", err)
			os.Exit(1)
		}
	}
	// Persist warm plans and ledger histories so the next process skips
	// re-planning and resumes every tenant's spend — the one thing that
	// must not vanish with the process.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dpcubed: persisting snapshots:", err)
	}
	fmt.Fprint(os.Stderr, srv.BudgetSummary())
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// loadKeys resolves the API key set: the -api-keys file when given,
// otherwise the DPCUBED_API_KEYS environment variable, otherwise none.
func loadKeys(path string) ([]server.KeyConfig, error) {
	if path != "" {
		return server.LoadAPIKeys(path)
	}
	if env := os.Getenv("DPCUBED_API_KEYS"); env != "" {
		return server.ParseAPIKeysEnv(env)
	}
	return nil, nil
}
