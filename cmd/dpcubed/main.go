// Command dpcubed serves differentially private marginal, datacube and
// synthetic-data releases over JSON/HTTP — the long-lived deployment shape
// of the paper's mechanisms, where the expensive strategy planning is done
// once per (schema, workload) and amortised across requests through a
// shared plan cache, while a budget ledger enforces a global (ε, δ) cap
// across everything the process ever releases.
//
// Endpoints (see internal/server):
//
//	POST /v1/release    — private marginals of an inline table
//	POST /v1/cube       — private datacube up to max_order
//	POST /v1/synthetic  — release + row-level synthetic microdata
//	GET  /v1/budget     — cumulative privacy spend vs. the cap
//
// Usage:
//
//	dpcubed -addr :8080 -epsilon-cap 10
//	curl -s localhost:8080/v1/budget
//	curl -s -X POST localhost:8080/v1/release -d @request.json
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get -drain to finish, new connections are refused, and the final budget
// ledger is printed to stderr so the spend survives in the logs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		epsCap     = flag.Float64("epsilon-cap", 10, "total privacy budget ε the process may ever spend")
		deltaCap   = flag.Float64("delta-cap", 1e-3, "total δ the process may ever spend (0 admits only pure-DP requests)")
		maxWorkers = flag.Int("max-workers", 0, "per-request engine worker bound (0 = all CPUs)")
		cacheSize  = flag.Int("cache-size", 0, "shared plan cache entries (0 = default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		EpsilonCap: *epsCap,
		DeltaCap:   *deltaCap,
		MaxWorkers: *maxWorkers,
		CacheSize:  *cacheSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpcubed:", err)
		os.Exit(2)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// BaseContext is the default (request contexts cancel on client
		// disconnect), which is what threads cancellation into the engine.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dpcubed: serving on %s (ε cap %g, δ cap %g)\n", *addr, *epsCap, *deltaCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "dpcubed: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dpcubed: drain:", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dpcubed:", err)
			os.Exit(1)
		}
	}
	// The spend is the one thing that must not vanish with the process.
	fmt.Fprint(os.Stderr, srv.Ledger().Summary())
}
