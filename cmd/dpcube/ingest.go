package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"repro"
)

// runIngest streams a local file up to a dpcubed daemon as
// PUT /v1/datasets/{id} — the upload-once half of the serving flow. CSV
// files are converted to the NDJSON wire format on the fly (header schema
// line, then one JSON array per row); .ndjson/.jsonl files are streamed
// through untouched — the daemon validates every line either way, and
// neither path buffers the whole relation in this process beyond what CSV
// dictionary-building already requires.
func runIngest(ctx context.Context, file, serverURL, datasetID string) error {
	if serverURL == "" || datasetID == "" {
		return fmt.Errorf("-ingest needs -server and -dataset")
	}
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()

	var body io.Reader = f
	if strings.HasSuffix(strings.ToLower(file), ".csv") {
		tab, _, err := readTable(f)
		if err != nil {
			return err
		}
		body = ndjsonOf(tab)
	}

	endpoint := strings.TrimRight(serverURL, "/") + "/v1/datasets/" + url.PathEscape(datasetID)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, endpoint, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("ingest refused: %s: %s", resp.Status, strings.TrimSpace(string(reply)))
	}
	fmt.Printf("ingested %s as dataset %q: %s\n", file, datasetID, strings.TrimSpace(string(reply)))
	return nil
}

// ndjsonOf streams a table in the dataset-store wire format through a pipe,
// so the HTTP client reads rows as they are encoded instead of holding a
// second serialized copy of the relation.
func ndjsonOf(tab *repro.Table) io.Reader {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw) // Encode appends '\n': one value per line
		header := struct {
			Schema []repro.Attribute `json:"schema"`
		}{Schema: tab.Schema.Attrs}
		if err := enc.Encode(header); err != nil {
			pw.CloseWithError(err)
			return
		}
		for _, row := range tab.Rows {
			if err := enc.Encode(row); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	return pr
}
