package main

import (
	"strings"
	"testing"

	"repro"
)

func TestReadTable(t *testing.T) {
	in := "a,b\nx,1\ny,2\nx,1\n"
	tab, dicts, err := readTable(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Count() != 3 || len(dicts) != 2 {
		t.Fatalf("parsed %d rows, %d dicts", tab.Count(), len(dicts))
	}
}

func TestAttrIndex(t *testing.T) {
	s := repro.MustSchema([]repro.Attribute{
		{Name: "age", Cardinality: 3},
		{Name: "sex", Cardinality: 2},
	})
	if attrIndex(s, "sex") != 1 {
		t.Fatal("attrIndex(sex) wrong")
	}
	if attrIndex(s, "missing") != -1 {
		t.Fatal("missing attribute should give -1")
	}
}

func TestCellIndexForPacksMaskBits(t *testing.T) {
	s := repro.MustSchema([]repro.Attribute{
		{Name: "a", Cardinality: 4}, // bits 0-1
		{Name: "b", Cardinality: 2}, // bit 2
		{Name: "c", Cardinality: 4}, // bits 3-4
	})
	mt := repro.MarginalTable{Mask: s.MaskOf(0, 2)} // bits 0,1,3,4
	// Domain index with a=3 (bits 0-1), c=2 (bits 3-4 → value 2 = bit 4).
	domainIdx := 3 | 2<<3
	// Packed: a occupies packed bits 0-1, c packed bits 2-3 → 3 | 2<<2 = 11.
	if got := cellIndexFor(s, mt, domainIdx); got != 11 {
		t.Fatalf("cellIndexFor = %d, want 11", got)
	}
}

func TestForEachCellVisitsAllValidCombinations(t *testing.T) {
	s := repro.MustSchema([]repro.Attribute{
		{Name: "a", Cardinality: 3},
		{Name: "b", Cardinality: 2},
	})
	w := repro.AllKWayMarginals(s, 2)
	tab := &repro.Table{Schema: s, Rows: [][]int{{0, 0}, {1, 1}, {2, 0}}}
	res, err := repro.Release(tab, w, repro.Options{Epsilon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	seen := map[string]bool{}
	forEachCell(s, res.Tables[0], nil, func(labels []string, v float64) {
		count++
		key := strings.Join(labels, "|")
		if seen[key] {
			t.Fatalf("duplicate cell %q", key)
		}
		seen[key] = true
		if len(labels) != 2 {
			t.Fatalf("labels = %v", labels)
		}
	})
	if count != 3*2 { // only valid value combinations, not padding cells
		t.Fatalf("visited %d cells, want 6", count)
	}
}

func TestForEachCellUsesDictionaries(t *testing.T) {
	s := repro.MustSchema([]repro.Attribute{{Name: "color", Cardinality: 2}})
	w := repro.AllKWayMarginals(s, 1)
	tab := &repro.Table{Schema: s, Rows: [][]int{{0}, {1}, {1}}}
	res, err := repro.Release(tab, w, repro.Options{Epsilon: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	forEachCell(s, res.Tables[0], [][]string{{"blue", "red"}}, func(labels []string, v float64) {
		got = append(got, labels[0])
	})
	if len(got) != 2 || got[0] != "color=blue" || got[1] != "color=red" {
		t.Fatalf("labels = %v", got)
	}
}
