// Command dpcube releases differentially private marginals of a CSV table.
//
// The input CSV needs a header row; every column becomes a categorical
// attribute. The requested marginals are released under ε-differential
// privacy with the Fourier strategy, optimal non-uniform budgets and
// Fourier consistency (the full pipeline of the paper), and printed as
// human-readable tables or CSV.
//
// Usage:
//
//	dpcube -in people.csv -epsilon 0.5 -k 2          # all 2-way marginals
//	dpcube -in people.csv -epsilon 1 -marginals age,sex+income
//	dpcube -in people.csv -epsilon 1 -k 1 -strategy cluster -format csv
//	dpcube -in people.csv -epsilon 1 -k 2 -workers 8 # parallel engine, same output
//
// Ingest mode streams a local CSV or NDJSON file up to a running dpcubed
// daemon (upload once), after which releases reference the dataset by id
// instead of re-uploading rows:
//
//	dpcube -ingest people.csv -server http://localhost:8080 -dataset people
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/strategy"
)

// readTable parses the CSV into a table plus per-column value dictionaries.
func readTable(r io.Reader) (*repro.Table, [][]string, error) {
	return dataset.ReadCSV(r)
}

func main() {
	var (
		in        = flag.String("in", "", "input CSV file (required)")
		epsilon   = flag.Float64("epsilon", 1.0, "privacy budget ε")
		delta     = flag.Float64("delta", 0, "δ for (ε,δ)-DP; 0 keeps pure ε-DP")
		k         = flag.Int("k", 1, "release all k-way marginals (ignored when -marginals is set)")
		marginals = flag.String("marginals", "", "explicit marginals: comma-separated, attributes joined by '+', e.g. age,sex+income")
		strat     = flag.String("strategy", "fourier", "strategy: fourier|workload|identity|cluster")
		uniform   = flag.Bool("uniform", false, "use uniform budgeting instead of the optimal non-uniform allocation")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "release-engine worker pool size; 0 = all CPUs, 1 = serial (output is identical at any setting)")
		shards    = flag.Int("shards", 0, "measure-stage shard count; 0 = auto-shard above the engine threshold, 1 = monolithic (output is identical at any setting)")
		format    = flag.String("format", "table", "output format: table|csv")
		preview   = flag.Bool("preview", false, "print the analytic error forecast per strategy and exit without spending any privacy budget")
		ingest    = flag.String("ingest", "", "ingest mode: stream this CSV/NDJSON file to a dpcubed daemon and exit")
		serverURL = flag.String("server", "", "dpcubed base URL for -ingest, e.g. http://localhost:8080")
		datasetID = flag.String("dataset", "", "dataset id to ingest under (with -ingest)")
	)
	flag.Parse()
	if *ingest != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runIngest(ctx, *ingest, *serverURL, *datasetID); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tab, dicts, err := readTable(f)
	if err != nil {
		fatal(err)
	}

	var w *repro.Workload
	if *marginals != "" {
		var sets [][]int
		for _, spec := range strings.Split(*marginals, ",") {
			var set []int
			for _, name := range strings.Split(spec, "+") {
				idx := attrIndex(tab.Schema, strings.TrimSpace(name))
				if idx < 0 {
					fatal(fmt.Errorf("unknown attribute %q", name))
				}
				set = append(set, idx)
			}
			sets = append(sets, set)
		}
		if w, err = repro.MarginalsOver(tab.Schema, sets); err != nil {
			fatal(err)
		}
	} else {
		w = repro.AllKWayMarginals(tab.Schema, *k)
	}

	kind := map[string]repro.StrategyKind{
		"fourier": repro.StrategyFourier, "workload": repro.StrategyWorkload,
		"identity": repro.StrategyIdentity, "cluster": repro.StrategyCluster,
	}[*strat]

	if *preview {
		printPreview(w, *epsilon, *delta, *uniform)
		return
	}

	// Ctrl-C aborts the in-flight release (the engine stops mid-stage)
	// instead of leaving the process burning CPU.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []repro.ReleaserOption{repro.WithStrategy(kind), repro.WithWorkers(*workers), repro.WithShards(*shards)}
	if *uniform {
		opts = append(opts, repro.WithUniformBudget())
	}
	rel, err := repro.NewReleaserContext(ctx, tab.Schema, w, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := rel.Release(ctx, tab, repro.ReleaseSpec{
		Epsilon: *epsilon,
		Delta:   *delta,
		Seed:    *seed,
	})
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "csv":
		printCSV(tab.Schema, dicts, res)
	default:
		printTables(tab.Schema, dicts, res)
	}
}

func attrIndex(s *repro.Schema, name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

func printTables(s *repro.Schema, dicts [][]string, res *repro.Result) {
	for _, mt := range res.Tables {
		names := make([]string, len(mt.Attrs))
		for i, a := range mt.Attrs {
			names[i] = s.Attrs[a].Name
		}
		fmt.Printf("marginal(%s)  per-cell σ=%.2f\n", strings.Join(names, ", "), math.Sqrt(mt.Variance))
		forEachCell(s, mt, dicts, func(labels []string, v float64) {
			fmt.Printf("  %-40s %10.1f\n", strings.Join(labels, " / "), v)
		})
		fmt.Println()
	}
}

func printCSV(s *repro.Schema, dicts [][]string, res *repro.Result) {
	fmt.Println("marginal,cell,count")
	for _, mt := range res.Tables {
		names := make([]string, len(mt.Attrs))
		for i, a := range mt.Attrs {
			names[i] = s.Attrs[a].Name
		}
		mname := strings.Join(names, "+")
		forEachCell(s, mt, dicts, func(labels []string, v float64) {
			fmt.Printf("%s,%s,%.2f\n", mname, strings.Join(labels, "|"), v)
		})
	}
}

// forEachCell walks the valid cells of a released marginal, mapping binary
// cell indices back to attribute value labels.
func forEachCell(s *repro.Schema, mt repro.MarginalTable, dicts [][]string, fn func(labels []string, v float64)) {
	// Enumerate value combinations of the marginal's attributes.
	var rec func(ai int, labels []string, idx int)
	rec = func(ai int, labels []string, idx int) {
		if ai == len(mt.Attrs) {
			fn(labels, mt.Cells[cellIndexFor(s, mt, idx)])
			return
		}
		attr := mt.Attrs[ai]
		for v := 0; v < s.Attrs[attr].Cardinality; v++ {
			label := fmt.Sprintf("%s=%d", s.Attrs[attr].Name, v)
			if dicts != nil && attr < len(dicts) && v < len(dicts[attr]) {
				label = fmt.Sprintf("%s=%s", s.Attrs[attr].Name, dicts[attr][v])
			}
			rec(ai+1, append(labels, label), idx|v<<uint(s.Offset(attr)))
		}
	}
	rec(0, nil, 0)
}

// cellIndexFor packs a full domain index down to the marginal's cell index.
func cellIndexFor(s *repro.Schema, mt repro.MarginalTable, domainIdx int) int {
	idx := 0
	pos := 0
	for b := 0; b < s.Dim(); b++ {
		if mt.Mask&(1<<uint(b)) == 0 {
			continue
		}
		if domainIdx&(1<<uint(b)) != 0 {
			idx |= 1 << uint(pos)
		}
		pos++
	}
	return idx
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpcube:", err)
	os.Exit(1)
}

// printPreview compares the analytic error forecast of every strategy at
// the requested privacy level — Steps 1–2 only, no data touched, no budget
// spent.
func printPreview(w *repro.Workload, epsilon, delta float64, uniform bool) {
	p := noise.Params{Type: noise.PureDP, Epsilon: epsilon, Neighbor: noise.AddRemove}
	if delta > 0 {
		p.Type, p.Delta = noise.ApproxDP, delta
	}
	budgeting := core.OptimalBudget
	if uniform {
		budgeting = core.UniformBudget
	}
	fmt.Printf("forecast at ε=%g (%s budgets): per-cell σ averaged over marginals\n", epsilon, budgeting)
	fmt.Printf("%-10s %14s %16s\n", "strategy", "mean cell σ", "total variance")
	for _, s := range []strategy.Strategy{
		strategy.Fourier{}, strategy.Workload{}, strategy.Identity{}, strategy.Cluster{},
	} {
		fc, err := core.Preview(w, core.Config{Strategy: s, Budgeting: budgeting, Privacy: p})
		if err != nil {
			fatal(err)
		}
		mean := 0.0
		for _, v := range fc.CellStdDev {
			mean += v
		}
		mean /= float64(len(fc.CellStdDev))
		fmt.Printf("%-10s %14.2f %16.4g\n", s.Name(), mean, fc.TotalVariance)
	}
}
