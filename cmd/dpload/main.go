// Command dpload load-tests a live dpcubed daemon: it uploads its own
// synthetic NDJSON dataset, then drives a mixed release/cube/synthetic
// workload at a target request rate — a configurable fraction of requests
// repeat one identical "hot" request (exercising the result cache's free
// replay path) while the rest are unique seeded releases that each charge
// the budget — optionally rotating across several API keys.
//
// The run's outcome is written as JSON (default BENCH_dpload.json):
// latency percentiles (p50/p95/p99), a log-bucketed latency histogram
// (same buckets the daemon exports to Prometheus, so client-observed and
// server-observed distributions line up), achieved RPS, error counts by
// status, the server-reported per-stage latency summary (where request
// time went inside the engine), and the result-cache hit rate over the
// run (read from /v1/metrics before and after), plus the number of requests
// coalesced onto another identical request's in-flight execution. With
// -cold-plans every request becomes a unique cluster-strategy release over an
// explicit workload, so each one pays a cold Step-1 planning search and the
// report's plan_ms quantiles isolate planner latency. With -benchmem the report additionally
// embeds ns/op, B/op and allocs/op parsed from a companion
// `go test -bench ... -benchmem` output file, and -compare checks those
// allocs/op against a previous report, exiting non-zero on a regression —
// the CI guard against re-introducing allocations on the hot paths.
//
// Usage:
//
//	dpcubed -addr :8080 -epsilon-cap 1e9 &
//	go test -run XXX -bench 'WHT|Perturb|Consist|ServerRelease' \
//	    -benchmem ./... > bench.txt
//	dpload -server http://localhost:8080 -rps 200 -duration 10s \
//	    -hot 0.8 -benchmem bench.txt -out BENCH_dpload.json
//	dpload -server http://localhost:8080 -compare BENCH_dpload.json ...
//
// The generated dataset is deterministic (fixed internal seed), so two
// runs against fresh daemons issue byte-identical request streams.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "base URL of the dpcubed daemon")
		rps       = flag.Float64("rps", 100, "target request rate")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		conns     = flag.Int("conns", 8, "concurrent request workers")
		hot       = flag.Float64("hot", 0.8, "fraction of requests repeating the identical hot request (result-cache replay path); the rest are unique seeded releases")
		mix       = flag.String("mix", "release=8,cube=1,synthetic=1", "endpoint weights as name=weight, comma-separated")
		keysCSV   = flag.String("keys", "", "comma-separated API keys to rotate through (empty = unauthenticated)")
		datasetID = flag.String("dataset", "dpload", "dataset id to upload and release against")
		rows      = flag.Int("rows", 4096, "rows in the generated dataset")
		attrs     = flag.Int("attrs", 8, "binary attributes in the generated schema")
		epsilon   = flag.Float64("epsilon", 0.01, "per-request ε")
		coldPlans = flag.Bool("cold-plans", false, "make every request a unique cluster-strategy release with an explicit workload, forcing a cold Step-1 planning pass per request (overrides -mix to release-only; combine with -hot 0)")
		out       = flag.String("out", "BENCH_dpload.json", "report output path")
		benchmem  = flag.String("benchmem", "", "companion `go test -bench -benchmem` output file to embed as allocs/op metrics")
		compare   = flag.String("compare", "", "previous report to compare allocs/op against; exits 1 on regression")
		slack     = flag.Float64("alloc-slack", 0.05, "tolerated fractional allocs/op increase before -compare fails")
		maxErrs   = flag.Float64("max-error-rate", 1.0, "error-rate threshold above which dpload exits 1 (1.0 = never)")
	)
	flag.Parse()

	rep := &report{
		GeneratedUnix: time.Now().Unix(),
		Server:        *serverURL,
		Config: runConfig{
			TargetRPS: *rps, DurationS: duration.Seconds(), Conns: *conns,
			HotRatio: *hot, Mix: *mix, Keys: len(splitCSV(*keysCSV)),
			DatasetRows: *rows, Attrs: *attrs, Epsilon: *epsilon,
			ColdPlans: *coldPlans,
		},
	}
	if *benchmem != "" {
		bm, err := parseBenchmem(*benchmem)
		if err != nil {
			fatal(err)
		}
		rep.Benchmem = bm
	}

	if *rps > 0 && *duration > 0 {
		if err := runLoad(rep, loadOptions{
			server: strings.TrimRight(*serverURL, "/"), rps: *rps, duration: *duration,
			conns: *conns, hot: *hot, mix: *mix, keys: splitCSV(*keysCSV),
			dataset: *datasetID, rows: *rows, attrs: *attrs, epsilon: *epsilon,
			cold: *coldPlans,
		}); err != nil {
			fatal(err)
		}
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dpload: wrote %s\n", *out)

	code := 0
	if *compare != "" {
		if regressions := compareAllocs(*compare, rep, *slack); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "dpload: ALLOC REGRESSION:", r)
			}
			code = 1
		} else {
			fmt.Fprintln(os.Stderr, "dpload: allocs/op within baseline")
		}
	}
	if rep.Requests.Total > 0 {
		rate := float64(rep.Requests.Errors) / float64(rep.Requests.Total)
		if rate > *maxErrs {
			fmt.Fprintf(os.Stderr, "dpload: error rate %.2f%% above threshold %.2f%%\n", rate*100, *maxErrs*100)
			code = 1
		}
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpload:", err)
	os.Exit(2)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Report shape (BENCH_dpload.json).

type report struct {
	GeneratedUnix int64        `json:"generated_unix"`
	Server        string       `json:"server"`
	Config        runConfig    `json:"config"`
	Requests      requestStats `json:"requests"`
	LatencyMS     latencyStats `json:"latency_ms"`
	// LatencyBuckets is the client-side latency distribution over the
	// whole run, recorded into the same log-spaced buckets the daemon
	// uses (internal/telemetry.LatencyBuckets), with bucket-derived
	// quantiles alongside the exact-sorted latency_ms ones above.
	LatencyBuckets *bucketStats `json:"latency_buckets,omitempty"`
	// Stages is the server-reported per-stage latency summary
	// (/v1/metrics "stages" section) at the end of the run: where
	// request time went inside the engine (plan/allocate/measure/...).
	Stages map[string]stageLatency `json:"stages,omitempty"`
	// PlanMS is the "plan" entry of Stages pulled out on its own — the
	// planner-acceleration tracking number a -cold-plans run exists to
	// produce (every request forces a cold Step-1 search, so these
	// quantiles are pure planning latency).
	PlanMS      *stageLatency `json:"plan_ms,omitempty"`
	AchievedRPS float64       `json:"achieved_rps"`
	Cache       cacheStats    `json:"cache"`
	// Coalesced counts requests over the run that were answered by another
	// identical in-flight request's execution (single-flight coalescing;
	// delta of the daemon's coalesced_requests counter).
	Coalesced uint64               `json:"coalesced"`
	Benchmem  map[string]benchLine `json:"benchmem,omitempty"`
}

type runConfig struct {
	TargetRPS   float64 `json:"target_rps"`
	DurationS   float64 `json:"duration_s"`
	Conns       int     `json:"conns"`
	HotRatio    float64 `json:"hot_ratio"`
	Mix         string  `json:"mix"`
	Keys        int     `json:"api_keys"`
	DatasetRows int     `json:"dataset_rows"`
	Attrs       int     `json:"attrs"`
	Epsilon     float64 `json:"epsilon"`
	ColdPlans   bool    `json:"cold_plans,omitempty"`
}

type requestStats struct {
	Total    int            `json:"total"`
	OK       int            `json:"ok"`
	Errors   int            `json:"errors"`
	Shed     int            `json:"shed"` // ticket dropped: workers saturated
	ByStatus map[string]int `json:"by_status"`
}

type latencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

type cacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// bucketStats is a latency histogram snapshot: per-bucket upper bounds in
// seconds, cumulative-free counts per bucket (last entry = overflow), and
// the quantiles interpolated from them.
type bucketStats struct {
	BoundsS []float64 `json:"bounds_s"`
	Counts  []uint64  `json:"counts"`
	Count   uint64    `json:"count"`
	P50MS   float64   `json:"p50_ms"`
	P95MS   float64   `json:"p95_ms"`
	P99MS   float64   `json:"p99_ms"`
	MeanMS  float64   `json:"mean_ms"`
}

func bucketsOf(h *telemetry.Histogram) *bucketStats {
	const ms = 1e3
	return &bucketStats{
		BoundsS: h.Bounds(),
		Counts:  h.BucketCounts(),
		Count:   h.Count(),
		P50MS:   h.Quantile(0.50) * ms,
		P95MS:   h.Quantile(0.95) * ms,
		P99MS:   h.Quantile(0.99) * ms,
		MeanMS:  h.Mean() * ms,
	}
}

// stageLatency mirrors the server's /v1/metrics "stages" entries.
type stageLatency struct {
	Count  uint64  `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

type benchLine struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// ---------------------------------------------------------------------------
// Load generation.

type loadOptions struct {
	server   string
	rps      float64
	duration time.Duration
	conns    int
	hot      float64
	mix      string
	keys     []string
	dataset  string
	rows     int
	attrs    int
	epsilon  float64
	cold     bool
}

type endpointWeight struct {
	name   string
	weight float64
}

func parseMix(s string) ([]endpointWeight, error) {
	var out []endpointWeight
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		switch name {
		case "release", "cube", "synthetic":
		default:
			return nil, fmt.Errorf("unknown endpoint %q in mix", name)
		}
		f, err := strconv.ParseFloat(w, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad weight in mix entry %q", part)
		}
		out = append(out, endpointWeight{name, f})
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	for i := range out {
		out[i].weight /= total
	}
	return out, nil
}

type sample struct {
	latency time.Duration
	status  int // 0 = transport error
}

func runLoad(rep *report, o loadOptions) error {
	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	auth := func(req *http.Request, i uint64) {
		if len(o.keys) > 0 {
			req.Header.Set("X-API-Key", o.keys[int(i)%len(o.keys)])
		}
	}

	// Upload the deterministic dataset (replacing any previous run's copy).
	put, err := http.NewRequest(http.MethodPut,
		o.server+"/v1/datasets/"+o.dataset, bytes.NewReader(buildNDJSON(o.rows, o.attrs)))
	if err != nil {
		return err
	}
	auth(put, 0)
	resp, err := client.Do(put)
	if err != nil {
		return fmt.Errorf("uploading dataset (is the daemon up?): %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("dataset upload: status %d", resp.StatusCode)
	}

	before, _, coalBefore, err := fetchMetrics(client, o.server, o.keys)
	if err != nil {
		return err
	}

	// Open-loop ticketing at the target rate; a full queue sheds the
	// ticket (counted) instead of silently stretching the schedule.
	tickets := make(chan uint64, o.conns*4)
	var shed atomic.Int64
	go func() {
		defer close(tickets)
		interval := time.Duration(float64(time.Second) / o.rps)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		deadline := time.After(o.duration)
		var n uint64
		for {
			select {
			case <-deadline:
				return
			case <-tick.C:
				select {
				case tickets <- n:
					n++
				default:
					shed.Add(1)
				}
			}
		}
	}()

	perWorker := make([][]sample, o.conns)
	hist := telemetry.NewHistogram(telemetry.LatencyBuckets())
	var wg sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < o.conns; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for n := range tickets {
				path, body := buildRequest(n, mix, o)
				req, err := http.NewRequest(http.MethodPost, o.server+path, bytes.NewReader(body))
				if err != nil {
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				auth(req, n)
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				hist.Observe(lat.Seconds())
				s := sample{latency: lat}
				if err == nil {
					s.status = resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				perWorker[wkr] = append(perWorker[wkr], s)
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, stages, coalAfter, err := fetchMetrics(client, o.server, o.keys)
	if err != nil {
		return err
	}

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	rep.Requests = summarize(all)
	rep.Requests.Shed = int(shed.Load())
	rep.LatencyMS = percentiles(all)
	rep.LatencyBuckets = bucketsOf(hist)
	rep.Stages = stages
	if plan, ok := stages["plan"]; ok {
		rep.PlanMS = &plan
	}
	rep.Coalesced = coalAfter - coalBefore
	if elapsed > 0 {
		rep.AchievedRPS = float64(len(all)) / elapsed.Seconds()
	}
	dh, dm := after.Hits-before.Hits, after.Misses-before.Misses
	rep.Cache = cacheStats{Hits: dh, Misses: dm}
	if dh+dm > 0 {
		rep.Cache.HitRate = float64(dh) / float64(dh+dm)
	}
	return nil
}

// buildRequest derives request n's endpoint, heat and body deterministically
// from its ticket number, so a repeated run replays the same stream.
func buildRequest(n uint64, mix []endpointWeight, o loadOptions) (string, []byte) {
	if o.cold {
		return coldPlanRequest(n, o)
	}
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 12345))
	endpoint := mix[len(mix)-1].name
	u := rng.Float64()
	for _, ew := range mix {
		if u < ew.weight {
			endpoint = ew.name
			break
		}
		u -= ew.weight
	}
	seed := int64(1) // the hot request: one fixed seed per endpoint
	if rng.Float64() >= o.hot {
		seed = int64(n) + 2 // unique: recomputes and charges
	}
	body := map[string]any{
		"dataset_id": o.dataset,
		"workload":   map[string]any{"k": 2},
		"epsilon":    o.epsilon,
		"seed":       seed,
	}
	switch endpoint {
	case "cube":
		delete(body, "workload")
		body["max_order"] = 2
	case "synthetic":
		body["synthetic_seed"] = seed
	}
	raw, _ := json.Marshal(body)
	return "/v1/" + endpoint, raw
}

// coldPlanRequest builds request n for -cold-plans mode: a cluster-strategy
// release over an explicit-marginals workload that varies with n, so every
// request misses the plan cache and pays a full Step-1 greedy-clustering
// search — the regime where the "plan" stage quantiles measure planner
// latency and nothing else. The workload is all singletons (rotated by n, so
// even order-sensitive cache keys vary) plus one pair whose indices walk the
// attribute set; the seed is always unique so the result cache never
// short-circuits the pipeline either.
func coldPlanRequest(n uint64, o loadOptions) (string, []byte) {
	a := o.attrs
	marginals := make([][]int, 0, a+1)
	rot := int(n % uint64(a))
	for s := 0; s < a; s++ {
		marginals = append(marginals, []int{(s + rot) % a})
	}
	if a >= 2 {
		i := int(n % uint64(a))
		j := (i + 1 + int(n/uint64(a))%(a-1)) % a // 1..a-1 offset: never equal to i
		marginals = append(marginals, []int{i, j})
	}
	body := map[string]any{
		"dataset_id": o.dataset,
		"workload":   map[string]any{"marginals": marginals},
		"strategy":   "cluster",
		"epsilon":    o.epsilon,
		"seed":       int64(n) + 2,
	}
	raw, _ := json.Marshal(body)
	return "/v1/release", raw
}

// buildNDJSON renders the deterministic load dataset: attrs binary
// attributes, rows rows, fixed seed.
func buildNDJSON(rows, attrs int) []byte {
	var b bytes.Buffer
	type attr struct {
		Name        string `json:"name"`
		Cardinality int    `json:"cardinality"`
	}
	schema := make([]attr, attrs)
	for i := range schema {
		schema[i] = attr{Name: fmt.Sprintf("a%d", i), Cardinality: 2}
	}
	hdr, _ := json.Marshal(map[string]any{"schema": schema})
	b.Write(hdr)
	b.WriteByte('\n')
	rng := rand.New(rand.NewSource(42))
	row := make([]int, attrs)
	for r := 0; r < rows; r++ {
		for i := range row {
			row[i] = rng.Intn(2)
		}
		raw, _ := json.Marshal(row)
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// fetchMetrics reads /v1/metrics, returning the result-cache counters and
// the per-stage latency summaries (empty until the daemon has run a
// release; the stage quantiles are over the daemon's lifetime, so run
// dpload against a fresh daemon when the run itself should dominate them).
func fetchMetrics(client *http.Client, server string, keys []string) (cacheStats, map[string]stageLatency, uint64, error) {
	req, err := http.NewRequest(http.MethodGet, server+"/v1/metrics", nil)
	if err != nil {
		return cacheStats{}, nil, 0, err
	}
	if len(keys) > 0 {
		req.Header.Set("X-API-Key", keys[0])
	}
	resp, err := client.Do(req)
	if err != nil {
		return cacheStats{}, nil, 0, fmt.Errorf("reading /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	var m struct {
		ResultCache *struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"result_cache"`
		Stages    map[string]stageLatency `json:"stages"`
		Coalesced uint64                  `json:"coalesced_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return cacheStats{}, nil, 0, fmt.Errorf("decoding /v1/metrics: %w", err)
	}
	stages := make(map[string]stageLatency, len(m.Stages))
	for name, sl := range m.Stages {
		if sl.Count > 0 {
			stages[name] = sl
		}
	}
	if m.ResultCache == nil {
		return cacheStats{}, stages, m.Coalesced, nil // cache disabled server-side
	}
	return cacheStats{Hits: m.ResultCache.Hits, Misses: m.ResultCache.Misses}, stages, m.Coalesced, nil
}

func summarize(all []sample) requestStats {
	st := requestStats{Total: len(all), ByStatus: map[string]int{}}
	for _, s := range all {
		switch {
		case s.status == 0:
			st.Errors++
			st.ByStatus["transport"]++
		case s.status >= 200 && s.status < 300:
			st.OK++
			st.ByStatus[strconv.Itoa(s.status)]++
		default:
			st.Errors++
			st.ByStatus[strconv.Itoa(s.status)]++
		}
	}
	return st
}

func percentiles(all []sample) latencyStats {
	if len(all) == 0 {
		return latencyStats{}
	}
	lats := make([]float64, len(all))
	sum := 0.0
	for i, s := range all {
		lats[i] = float64(s.latency) / float64(time.Millisecond)
		sum += lats[i]
	}
	sort.Float64s(lats)
	at := func(q float64) float64 { return lats[int(q*float64(len(lats)-1))] }
	return latencyStats{
		P50: at(0.50), P95: at(0.95), P99: at(0.99),
		Max: lats[len(lats)-1], Mean: sum / float64(len(lats)),
	}
}

// ---------------------------------------------------------------------------
// Benchmem parsing and comparison.

// parseBenchmem reads standard `go test -bench -benchmem` output:
//
//	BenchmarkWHTKernel1M/blocked-8  170  7031082 ns/op  2 B/op  0 allocs/op
//
// keyed by benchmark name with the -GOMAXPROCS suffix stripped.
func parseBenchmem(path string) (map[string]benchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]benchLine{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var bl benchLine
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				bl.NsOp = v
			case "B/op":
				bl.BOp = v
			case "allocs/op":
				bl.AllocsOp = v
			}
		}
		if bl.NsOp > 0 {
			out[name] = bl
		}
	}
	return out, sc.Err()
}

// compareAllocs checks the current report's allocs/op against a baseline
// report file, returning one message per regression past the slack.
func compareAllocs(baselinePath string, cur *report, slack float64) []string {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return []string{fmt.Sprintf("reading baseline %s: %v", baselinePath, err)}
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("parsing baseline %s: %v", baselinePath, err)}
	}
	var regressions []string
	for name, b := range base.Benchmem {
		c, ok := cur.Benchmem[name]
		if !ok {
			continue // benchmark removed or renamed: not a regression
		}
		if c.AllocsOp > b.AllocsOp*(1+slack)+0.5 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f allocs/op, baseline %.0f", name, c.AllocsOp, b.AllocsOp))
		}
	}
	sort.Strings(regressions)
	return regressions
}
