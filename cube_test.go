package repro

import (
	"math"
	"testing"
)

func retailTable() *Table {
	s := MustSchema([]Attribute{
		{Name: "region", Cardinality: 3},
		{Name: "product", Cardinality: 4},
		{Name: "channel", Cardinality: 2},
	})
	rows := make([][]int, 0, 900)
	for i := 0; i < 900; i++ {
		rows = append(rows, []int{i % 3, (i / 3) % 4, (i / 12) % 2})
	}
	return &Table{Schema: s, Rows: rows}
}

func TestReleaseCubeConsistent(t *testing.T) {
	tab := retailTable()
	cube, err := ReleaseCube(tab, 2, Options{Epsilon: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Lattice.Cuboids) != 1+3+3 {
		t.Fatalf("%d cuboids, want 7", len(cube.Lattice.Cuboids))
	}
	if e := cube.ConsistencyError(); e > 1e-6 {
		t.Fatalf("consistency error %v", e)
	}
	if math.Abs(cube.Total()-900) > 100 {
		t.Fatalf("total %v far from 900", cube.Total())
	}
}

func TestReleaseCubeStrategies(t *testing.T) {
	tab := retailTable()
	for _, k := range []StrategyKind{StrategyFourier, StrategyWorkload, StrategyCluster, StrategyIdentity} {
		cube, err := ReleaseCube(tab, 1, Options{Epsilon: 1, Seed: 3, Strategy: k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if e := cube.ConsistencyError(); e > 1e-6 {
			t.Fatalf("%v: consistency error %v", k, e)
		}
	}
}

func TestSyntheticDataEndToEnd(t *testing.T) {
	tab := retailTable()
	w := AllKWayMarginals(tab.Schema, 2)
	res, err := Release(tab, w, Options{Epsilon: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := SyntheticData(tab.Schema, w, res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Count() == 0 {
		t.Fatal("empty synthetic table")
	}
	if math.Abs(float64(syn.Count())-900) > 150 {
		t.Fatalf("synthetic row count %d far from 900", syn.Count())
	}
	// Synthetic rows must be valid tuples.
	for _, row := range syn.Rows {
		for j, v := range row {
			if v < 0 || v >= tab.Schema.Attrs[j].Cardinality {
				t.Fatalf("invalid synthetic value %d for attribute %d", v, j)
			}
		}
	}
	// Its 1-way marginals track the release within the rounding budget.
	truth, err := Release(tab, w, Options{Epsilon: 1e12, SkipConsistency: true, Strategy: StrategyWorkload})
	if err != nil {
		t.Fatal(err)
	}
	synRes, err := Release(syn, w, Options{Epsilon: 1e12, SkipConsistency: true, Strategy: StrategyWorkload})
	if err != nil {
		t.Fatal(err)
	}
	drift := 0.0
	for i := range truth.Answers {
		drift += math.Abs(synRes.Answers[i] - res.Answers[i])
	}
	noise := 0.0
	for i := range truth.Answers {
		noise += math.Abs(res.Answers[i] - truth.Answers[i])
	}
	if drift > 3*noise+float64(len(truth.Answers)) {
		t.Fatalf("synthetic drift %v too large vs mechanism noise %v", drift, noise)
	}
}

func TestReleaseVectorCoefficients(t *testing.T) {
	tab := retailTable()
	w := AllKWayMarginals(tab.Schema, 1)
	res, err := Release(tab, w, Options{Epsilon: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := ReleaseVectorCoefficients(tab.Schema, w, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(xhat) != tab.Schema.DomainSize() {
		t.Fatalf("vector length %d, want %d", len(xhat), tab.Schema.DomainSize())
	}
	total := 0.0
	for _, v := range xhat {
		total += v
	}
	if math.Abs(total-900) > 50 {
		t.Fatalf("materialised total %v far from 900", total)
	}
}
