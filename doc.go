// Package repro is a from-scratch Go implementation of "Accurate and
// Efficient Private Release of Datacubes and Contingency Tables" (Cormode,
// Procopiuc, Srivastava, Yaroslavtsev; ICDE 2013): differentially private
// release of marginals, datacubes and contingency tables through the
// strategy / optimal-noise-budgeting / recovery framework, with Fourier
// consistency.
//
// # Quick start
//
//	schema := repro.MustSchema([]repro.Attribute{
//		{Name: "age-band", Cardinality: 8},
//		{Name: "smoker", Cardinality: 2},
//	})
//	table := &repro.Table{Schema: schema, Rows: rows}
//	workload := repro.AllKWayMarginals(schema, 1)
//	release, err := repro.Release(table, workload, repro.Options{
//		Epsilon:  0.5,
//		Strategy: repro.StrategyFourier,
//	})
//
// The release holds one noisy table per requested marginal, consistent with
// a common (unknown) dataset, under ε-differential privacy.
//
// The internal packages follow the paper's structure: internal/strategy
// (Step 1), internal/budget (Step 2, Section 3.1), internal/recovery and
// internal/consistency (Step 3, Sections 3.2–3.3 and 4.3), internal/core
// (the assembled mechanism), with internal/linalg, internal/lp,
// internal/transform, internal/noise, internal/bits and internal/dataset as
// self-contained substrates. See DESIGN.md for the full inventory and
// EXPERIMENTS.md for the reproduction of every table and figure in the
// paper's evaluation.
package repro
