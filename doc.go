// Package repro is a from-scratch Go implementation of "Accurate and
// Efficient Private Release of Datacubes and Contingency Tables" (Cormode,
// Procopiuc, Srivastava, Yaroslavtsev; ICDE 2013): differentially private
// release of marginals, datacubes and contingency tables through the
// strategy / optimal-noise-budgeting / recovery framework, with Fourier
// consistency.
//
// # Quick start
//
// The service API is a long-lived Releaser, constructed once per
// (schema, workload) with functional options and then asked for any number
// of releases — each an independent DP mechanism run with its own
// (ε, δ, seed):
//
//	schema := repro.MustSchema([]repro.Attribute{
//		{Name: "age-band", Cardinality: 8},
//		{Name: "smoker", Cardinality: 2},
//	})
//	workload := repro.AllKWayMarginals(schema, 1)
//	releaser, err := repro.NewReleaser(schema, workload,
//		repro.WithStrategy(repro.StrategyFourier),
//		repro.WithBudgetCap(4.0, 0), // refuse releases past total ε = 4
//	)
//	// ...
//	table := &repro.Table{Schema: schema, Rows: rows}
//	release, err := releaser.Release(ctx, table, repro.ReleaseSpec{
//		Epsilon: 0.5,
//		Seed:    1,
//	})
//
// Construction pre-plans the Step-1 strategy and warms the Releaser's plan
// cache; because planning is privacy-independent, every subsequent release
// (any ε, any seed, any fresh data) reuses that single plan. For the
// cluster strategy the plan search costs orders of magnitude more than a
// release, so this is the difference between a service and a batch job.
// Every release call accepts a context.Context: cancelling it (a client
// disconnect, a deadline) aborts the engine mid-stage instead of burning
// CPU on an answer nobody will read.
//
// The historical one-shot entry points (Release, ReleaseVector,
// ReleaseCube, SyntheticData) remain as thin wrappers over a throwaway
// Releaser.
//
// # Budget accounting
//
// A BudgetLedger tracks cumulative (ε, δ) spend across releases with a
// hard cap — sequential composition with a stop, plus parallel composition
// across disjoint population partitions (ReleaseSpec.Partition). Attach
// one with WithBudgetCap (private ledger) or WithBudgetLedger (shared
// across many Releasers — a serving process enforcing one budget over all
// its schemas and workloads).
//
// How charges fold into total spend is pluggable (WithComposition):
// BasicComposition is plain (ε, δ)-summation; ZCDPComposition accounts in
// zero-concentrated DP — each charge converts to a ρ cost (exactly, when
// the charge carries the Gaussian σ; otherwise from its (ε, δ) under this
// package's noise calibration), ρ adds up, and spend reports as the tight
// (ε, δ) at a target δ. Under zCDP a long sequence of small Gaussian
// releases fits under caps that plain summation exhausts — fifty
// (ε=0.05, δ=1e-9) releases compose to roughly ε≈0.29 at δ=1e-6 instead
// of the summed ε=2.5.
//
// Multi-tenant accounting: WithBudgetCaps attaches a BudgetRegistry — one
// ledger per key, each under its own (or the inherited global) cap, plus
// the global ledger that every charge also passes through. A release
// names its tenant with ReleaseSpec.Key; admission is all-or-nothing
// across the key's ledger and the global one, so one tenant exhausting
// its budget neither consumes nor unblocks another's, while the global
// cap still bounds the whole deployment. The HTTP layer keys this by API
// key (see below).
//
// The semantics of "spend": every admitted Release/ReleaseVector call
// charges exactly its ReleaseSpec (ε, δ), atomically, before the mechanism
// runs — concurrent releases can never jointly pass the cap, and a refused
// release (ErrBudgetExhausted) spends nothing and never touches the data.
// A release that fails after admission (including context cancellation)
// stays charged: the conservative reading that keeps the guarantee sound
// under partial executions — noise may already have been drawn against the
// data when the failure surfaced, and refunding would let a caller replay
// aborted releases for free. Post-processing is free: the consistency
// projection (or skipping it via WithoutConsistency) and synthetic-data
// generation (Releaser.Synthetic, SyntheticData) never change what a
// release costs.
//
// Construction-time and admission-time failures carry typed errors —
// ErrInvalidEpsilon, ErrInvalidDelta, ErrDimensionMismatch,
// ErrBudgetExhausted, ErrInvalidOption — test with errors.Is.
//
// # Serving over HTTP: upload once, release many
//
// internal/server + cmd/dpcubed wrap the service API in a JSON-over-HTTP
// daemon built around the upload-once / release-many flow. The sensitive
// relation is ingested exactly once, as streaming NDJSON:
//
//	PUT /v1/datasets/people
//	{"schema":[{"name":"age-band","cardinality":8},{"name":"smoker","cardinality":2}]}
//	[0,1]
//	[3,0]
//	...
//
// Each line is decoded, validated and folded into the dataset's sharded
// aggregated contingency vector by a worker pool, then dropped — ingestion
// memory is bounded no matter how many rows stream past, and a malformed
// stream rejects atomically (no partial dataset). A growing relation
// appends deltas instead of re-uploading: PUT /v1/datasets/{id}?mode=append
// sums a new stream's aggregate into the resident one (schemas must match;
// transactional on failure). Ingestion never charges the budget ledger:
// privacy is spent when answers leave, not when data arrives.
//
// After that, any number of releases reference the dataset by id instead
// of hauling rows in every body:
//
//	POST /v1/release    {"dataset_id":"people","workload":{"k":2},"epsilon":0.5,"seed":1}
//	POST /v1/cube       {"dataset_id":"people","max_order":2,"epsilon":1}
//	POST /v1/synthetic  {"dataset_id":"people","workload":{"k":1},"epsilon":0.5}
//	GET  /v1/budget     — the caller's spend against its cap (plus the global view)
//	GET  /v1/metrics    — per-endpoint counters, per-key spend, cache and store stats
//
// The daemon is multi-tenant: with API keys configured (dpcubed
// -api-keys, or server.Config.APIKeys) every request authenticates and
// spends against its own per-key ledger under a still-binding global cap,
// and ledger charge histories persist through the same snapshot codec as
// datasets, so no tenant's spend resets on restart. dpcubed -composition
// zcdp switches all ledgers to zCDP accounting.
//
// A dataset_id release is bit-identical to the equivalent rows-in-body
// request at the same seed: the stored aggregate is exactly what
// Table.Vector would have produced, fed straight to the engine
// (Releaser.ReleaseDataset is the programmatic form). Deleting a dataset
// never tears an in-flight release — handles are reference-counted, so a
// release that admitted against a dataset finishes against that version.
//
// With -store-dir, datasets persist as versioned snapshots (schema +
// aggregated counts, never raw rows — see internal/store) and a restarted
// daemon serves them without re-upload; warm cluster plans persist through
// the same codec, so the expensive Step-1 search is not repeated either.
// One Releaser registry and plan cache are shared across requests, the
// typed errors map to 4xx statuses (budget exhaustion is 429, an unknown
// dataset 404), and shutdown is graceful. See examples/server for an
// in-process round trip, cmd/dpcubed for the daemon, and cmd/dpcube
// -ingest for streaming a local CSV/NDJSON file up to it.
//
// # Performance: the result cache and the hot-path audit
//
// The serving layer caches fully rendered release payloads
// (internal/rescache): a repeated identical dataset-backed request —
// the common case behind a dashboard refresh — is answered from an LRU
// with the exact bytes of the run that computed it, skipping the engine
// entirely. A hit does NOT recharge the budget ledger. The justification
// is the engine's determinism contract: a release is a pure function of
// (dataset version, workload, strategy, ε, δ, seed, shards, consistency),
// all of which are in the cache key, so replaying the cached payload
// reveals exactly the already-released noisy output — free
// post-processing under DP, identical to the client replaying its own
// copy of the response. Worker counts are deliberately NOT in the key
// (the engine is bit-identical at every parallelism), inline-rows
// requests are never cached (no version to key on), and any dataset
// mutation — replace, append, delete — invalidates that dataset's
// entries through a store change hook, with the version in the key as a
// second line of defence. /v1/metrics reports hits, misses and resident
// entries; Config.ResultCacheSize sizes the LRU (negative disables).
//
// Under the cache, the engine's inner loops are audited to near-zero
// allocation: the WHT butterfly kernel is cache-blocked and radix-4
// unrolled (bit-identical to the textbook dataflow, ~2× at 2^20 cells),
// the perturb stage reseeds one noise source per worker in place of
// per-block substream construction, and the consistency projection
// pools its per-marginal scratch. Tests pin the allocs/op of each stage;
// cmd/dpload drives a live daemon at a target request rate (mixed
// release/cube/synthetic traffic, hot-repeat vs unique mix, optional
// API-key rotation) and writes BENCH_dpload.json — latency percentiles,
// achieved RPS, cache hit rate, and embedded -benchmem allocs/op — which
// CI regenerates and gates against the committed baseline. For live
// diagnosis, dpcubed -pprof-addr serves net/http/pprof on a separate
// admin listener.
//
// # Observability
//
// The serving stack is instrumented end to end by internal/telemetry, a
// dependency-free metrics/tracing/logging core. Every request increments
// per-endpoint counters and a log-bucketed latency histogram; every
// release records per-stage wall time (plan/allocate/measure/recover/
// consist) into shared histograms. GET /v1/metrics reports bucket-derived
// p50/p95/p99 summaries in JSON, and ?format=prometheus (also /metrics
// on the -pprof-addr admin listener) exposes everything — including Go
// runtime gauges — in Prometheus text format. Requests carry a
// correlation ID (inbound X-Request-Id honored, otherwise generated and
// echoed) that flows through structured slog request logs, into error
// bodies, and across fabric task frames so worker-side logs line up
// with the coordinator's release. A release request with
// "debug_timing": true gets its full span tree — stage durations, shard
// fan-out, result-cache verdict, per-task fabric attempts — embedded in
// the response. With no trace installed the instrumentation is free:
// tests pin the nil-trace hot paths at zero allocations. Metrics and
// logs never contain cell counts, noisy answers or raw API keys (keys
// appear only as short fingerprints).
//
// # The staged, blocked release engine
//
// Under the hood every release runs through the staged pipeline of
// internal/engine, mirroring the paper's three-step framework (Figure 3):
//
//	Plan → Allocate → Measure → Recover → Consist
//
// Plan builds (or fetches from a cache) the grouped strategy matrix;
// Allocate computes the Step-2 noise budgets; Measure perturbs the strategy
// answers; Recover reconstructs the marginals; Consist projects them onto a
// mutually consistent set.
//
// The pipeline's big vectors — the 2^d contingency vector and the strategy
// answers — travel as blocked (sharded) vectors, contiguous cell-range
// blocks instead of one giant slice (internal/vector; BlockedVector and
// Releaser.ReleaseBlocked are the public face). A dataset-store aggregate
// feeds releases in its sharded form without ever being gathered; the
// measure stage materialises answers one block per worker (WithShards /
// ReleaseSpec.Shards bound the partition, auto-sharded above the engine's
// threshold); and the consistency projection — historically the last
// serial stage — fans its per-marginal transforms, per-coefficient
// weighted average and reconstruction over the same pool. Worker counts,
// shard counts and input blockings never change a single bit of a release:
// noise is drawn from per-group seed substreams and every accumulation
// order is blocking-independent, so a release is a pure function of
// (data, workload, spec) and the same Seed is bit-reproducible at any
// parallelism. Cancellation propagates into the worker pools.
//
// # Static invariants
//
// The contracts above are not just prose: dpvet (internal/analysis +
// cmd/dpvet) machine-enforces the ones that are properties of code shape,
// and CI fails on any unsuppressed finding. detmap guards bit-identity —
// no map iteration may feed an append, float/string accumulation, wire
// encoding or channel send in the deterministic packages; seedflow guards
// reproducibility — pipeline packages draw randomness only through
// noise.Source substreams, never math/rand, crypto/rand or clock-derived
// seeds; keyleak guards credential hygiene — API keys reach logs, errors
// and metrics only as redaction fingerprints; ctxflow guards the
// cancellation chain — a function holding a request context may not
// detach via context.Background()/TODO() without an annotated reason; and
// errsink guards the error surface — handlers route failures through the
// typed-error mapper, never raw err.Error() bodies. Deliberate deviations
// are annotated in source with a mandatory written rationale and survive
// in the CI audit report; see internal/analysis for the analyzer
// contracts and the suppression grammar.
//
// The internal packages follow the paper's structure: internal/strategy
// (Step 1), internal/budget (Step 2, Section 3.1), internal/recovery and
// internal/consistency (Step 3, Sections 3.2–3.3 and 4.3), internal/engine
// (the staged mechanism) with internal/core as its stable facade and
// internal/vector as the sharded-vector substrate, internal/accountant
// (the ledger under BudgetLedger), internal/server (the HTTP layer), and
// internal/linalg, internal/lp, internal/transform, internal/noise,
// internal/bits and internal/dataset as self-contained substrates. See
// DESIGN.md for the full inventory and EXPERIMENTS.md for the reproduction
// of every table and figure in the paper's evaluation.
package repro
