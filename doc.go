// Package repro is a from-scratch Go implementation of "Accurate and
// Efficient Private Release of Datacubes and Contingency Tables" (Cormode,
// Procopiuc, Srivastava, Yaroslavtsev; ICDE 2013): differentially private
// release of marginals, datacubes and contingency tables through the
// strategy / optimal-noise-budgeting / recovery framework, with Fourier
// consistency.
//
// # Quick start
//
//	schema := repro.MustSchema([]repro.Attribute{
//		{Name: "age-band", Cardinality: 8},
//		{Name: "smoker", Cardinality: 2},
//	})
//	table := &repro.Table{Schema: schema, Rows: rows}
//	workload := repro.AllKWayMarginals(schema, 1)
//	release, err := repro.Release(table, workload, repro.Options{
//		Epsilon:  0.5,
//		Strategy: repro.StrategyFourier,
//	})
//
// The release holds one noisy table per requested marginal, consistent with
// a common (unknown) dataset, under ε-differential privacy.
//
// # The staged release engine
//
// Under the hood every release runs through the staged pipeline of
// internal/engine, mirroring the paper's three-step framework (Figure 3):
//
//	Plan → Allocate → Measure → Recover → Consist
//
// Plan builds (or fetches from a cache) the grouped strategy matrix;
// Allocate computes the Step-2 noise budgets; Measure perturbs the strategy
// answers; Recover reconstructs the marginals; Consist projects them onto a
// mutually consistent set. Measurement and recovery fan out over a bounded
// worker pool (Options.Workers), and noise is drawn from per-group seed
// substreams, so a release is a pure function of (data, workload, options):
// the same Seed yields a bit-identical release at any worker count.
//
// For serving scenarios — many releases over the same schema — pass a
// shared Options.Cache (see NewPlanCache) to skip Step 1 entirely on
// repeated workloads; for the cluster strategy that step dominates the
// whole run.
//
// The internal packages follow the paper's structure: internal/strategy
// (Step 1), internal/budget (Step 2, Section 3.1), internal/recovery and
// internal/consistency (Step 3, Sections 3.2–3.3 and 4.3), internal/engine
// (the staged mechanism) with internal/core as its stable facade, and
// internal/linalg, internal/lp, internal/transform, internal/noise,
// internal/bits and internal/dataset as self-contained substrates. See
// DESIGN.md for the full inventory and EXPERIMENTS.md for the reproduction
// of every table and figure in the paper's evaluation.
package repro
