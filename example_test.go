package repro_test

import (
	"fmt"
	"log"
	"math"

	"repro"
)

// Example releases one 2-way marginal of a tiny table with a huge privacy
// budget so the output is deterministic enough to show.
func Example() {
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "smoker", Cardinality: 2},
		{Name: "exercise", Cardinality: 2},
	})
	table := &repro.Table{Schema: schema, Rows: [][]int{
		{0, 1}, {0, 1}, {0, 0}, {1, 0}, {1, 0}, {1, 0}, {0, 1}, {0, 0},
	}}
	workload, err := repro.MarginalsOver(schema, [][]int{{0, 1}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Release(table, workload, repro.Options{Epsilon: 1e9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for c, v := range res.Tables[0].Cells {
		v = math.Round(v)
		if v == 0 {
			v = 0 // normalise −0 from floating-point consistency algebra
		}
		fmt.Printf("smoker=%d exercise=%d: %.0f\n", c&1, c>>1, v)
	}
	// Output:
	// smoker=0 exercise=0: 2
	// smoker=1 exercise=0: 3
	// smoker=0 exercise=1: 3
	// smoker=1 exercise=1: 0
}

// ExampleRelease_strategies compares the analytic total variance of two
// strategies on the same workload — the quantity Step 2 optimises.
func ExampleRelease_strategies() {
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "a", Cardinality: 2},
		{Name: "b", Cardinality: 2},
		{Name: "c", Cardinality: 2},
	})
	table := &repro.Table{Schema: schema, Rows: [][]int{{0, 0, 1}, {1, 1, 0}}}
	w := repro.AllKWayMarginals(schema, 1)

	uniform, _ := repro.Release(table, w, repro.Options{
		Epsilon: 1, Strategy: repro.StrategyWorkload, UniformBudget: true,
	})
	optimal, _ := repro.Release(table, w, repro.Options{
		Epsilon: 1, Strategy: repro.StrategyWorkload,
	})
	fmt.Printf("optimal budgets never increase the variance: %v\n",
		optimal.TotalVariance <= uniform.TotalVariance)
	// Output:
	// optimal budgets never increase the variance: true
}

// ExampleReleaseCube shows the consistency property of a released cube: a
// roll-up of a child cuboid equals the released parent exactly.
func ExampleReleaseCube() {
	schema := repro.MustSchema([]repro.Attribute{
		{Name: "region", Cardinality: 2},
		{Name: "product", Cardinality: 2},
	})
	rows := make([][]int, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, []int{i % 2, (i / 2) % 2})
	}
	cube, err := repro.ReleaseCube(&repro.Table{Schema: schema, Rows: rows}, 2,
		repro.Options{Epsilon: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lattice inconsistency below 1e-9: %v\n", cube.ConsistencyError() < 1e-9)
	// Output:
	// lattice inconsistency below 1e-9: true
}
